#include "cluster/trace_sim.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

#include "cluster/fleet_state.hh"
#include "core/budget_hierarchy.hh"
#include "core/goa.hh"
#include "core/soa.hh"
#include "power/rack.hh"
#include "power/rack_manager.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"
#include "workload/trace_generator.hh"

namespace soc
{
namespace cluster
{

double
TraceSimConfig::tierLimitFactor(PowerTier tier)
{
    // Limit relative to the baseline P99 rack draw.  High-power
    // clusters run close to their limit; low-power clusters have
    // ample headroom (Fig. 5: many racks under 73% utilization).
    switch (tier) {
      case PowerTier::High: return 1.07;
      case PowerTier::Medium: return 1.17;
      case PowerTier::Low: break;
    }
    return 1.45;
}

void
TraceSimConfig::validate() const
{
    auto fail = [](const std::string &what) {
        throw std::invalid_argument("TraceSimConfig: " + what);
    };
    if (racks < 1)
        fail("racks must be >= 1 (got " + std::to_string(racks) +
             ")");
    if (serversPerRack < 1) {
        fail("serversPerRack must be >= 1 (got " +
             std::to_string(serversPerRack) + ")");
    }
    if (!(limitFactor > 0.0)) {
        fail("limitFactor must be > 0 (got " +
             std::to_string(limitFactor) + ")");
    }
    if (warmup < 0)
        fail("warmup must be non-negative");
    if (duration < 0)
        fail("duration must be non-negative");
    if (warmup + duration <= 0)
        fail("warmup + duration must be > 0 (nothing to simulate)");
    if (controlStep <= 0)
        fail("controlStep must be > 0");
    if (recomputePeriod <= 0)
        fail("recomputePeriod must be > 0");
    if (templateWindow < 0 ||
        (templateWindow > 0 && templateWindow % sim::kSlot != 0)) {
        fail("templateWindow must be 0 or a positive multiple of "
             "the telemetry slot");
    }
    if (streamWindow < 0 ||
        (streamWindow > 0 && streamWindow % sim::kSlot != 0)) {
        fail("streamWindow must be 0 or a positive multiple of "
             "the telemetry slot");
    }
    if (racksPerRow < 1) {
        fail("racksPerRow must be >= 1 (got " +
             std::to_string(racksPerRow) + ")");
    }
    if (budgetPath != BudgetPath::PerRack && faults.enabled) {
        fail("hierarchical budget paths do not support fault "
             "injection (the lockstep recompute has no outage-retry "
             "path); use budgetPath = PerRack with faults");
    }
    faults.validate();
    ingress.validate();
    storm.validate();
    if (storm.enabled && !ingress.enabled) {
        fail("storm requires the ingress (there is no hint channel "
             "to attack otherwise)");
    }
}

namespace
{

/** How long after a discrete fault a cap event is still blamed on
 *  it (crash fallout: revoked grants, cold telemetry). */
constexpr sim::Tick kFaultAttribution = sim::kHour;

/**
 * Metrics one rack accumulates over its control loop.  Every rack
 * owns one instance, so the loops can run on different threads; the
 * instances are merged in rack order afterwards, which makes the
 * result independent of how racks were scheduled over threads.
 */
struct RackOutcome {
    std::uint64_t capEvents = 0;
    std::uint64_t cappedTicks = 0;
    std::uint64_t warnings = 0;
    std::uint64_t requests = 0;
    std::uint64_t wantSteps = 0;
    std::uint64_t successSteps = 0;
    power::Joules energyJoules{0.0};
    sim::OnlineStats penalty;
    sim::OnlineStats rackUtil;
    sim::OnlineStats perf;
    sim::FaultStats faults;
    std::uint64_t capEventsFaultAttributed = 0;
    std::uint64_t staleLeaseTicks = 0;
    std::uint64_t recoveries = 0;
    sim::Tick recoverySum = 0;
    core::IngressStats ingress;
    std::uint64_t flapDenied = 0;
    /** Wall-clock accounting (not simulation state). */
    double genSeconds = 0.0;
    double simSeconds = 0.0;
};

bool
isCandidate(const workload::VmMix &vm, double threshold)
{
    if (vm.archetype.kind == workload::ShapeKind::ConstantHigh ||
        vm.archetype.kind == workload::ShapeKind::LowIdle) {
        return false;
    }
    return vm.archetype.peakUtil >= threshold;
}

// Wall-clock here measures *our own* speed (gen/sim seconds in the
// result), never simulation time: soclint:allow(DET-001)
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/**
 * One rack's build state plus its resumable control loop.
 *
 * The former buildRack/simulateRack pair, reshaped so the loop can
 * pause at recompute boundaries: the PerRack and
 * HierarchyEquivalence paths run build() + advance(end) + finish()
 * in one go (racks fully independent, built and freed inside their
 * chunk), while the HierarchyZone orchestrator keeps every rack
 * resident and alternates parallel advance/boundary phases with the
 * serial zone recompute (see runLockstepZone).
 *
 * Traces are streamed: build() creates one ServerTraceStream per
 * server, derives the rack limit from a first streaming pass over
 * the full horizon (bit-identical to the materialized
 * rackPower-quantile path), then rewinds; replay regenerates the
 * samples window by window into the FleetState buffers, so a rack
 * holds O(VMs x streamWindow) samples instead of the whole horizon.
 */
class RackRuntime
{
  public:
    RackRuntime(const TraceSimConfig &config,
                const power::PowerModel &model,
                const core::SoaConfig &soaCfg, int rackIndex,
                RackOutcome &out)
        : config_(config),
          model_(model),
          soaCfg_(soaCfg),
          rackIndex_(rackIndex),
          out_(out),
          end_(config.warmup + config.duration),
          dtS_(static_cast<double>(config.controlStep) /
               sim::kSecond)
    {
    }

    /** Generate streams, size the limit, wire servers/agents. */
    void build();

    /** Run control steps while t < @p until. */
    void advance(sim::Tick until);

    /**
     * First half of a lockstep boundary step at time @p t (== the
     * rack's current step, asserted): step prolog, then pull this
     * rack's profiles and reduce them into the aggregate slot via
     * @p agg (shared per worker chunk — scratch only).
     */
    void boundaryCollect(sim::Tick t, core::ProfileAggregator &agg);

    /**
     * Second half of a lockstep boundary step: fetch this rack's
     * budget from @p hier (read-only — safe concurrently), push it
     * through the gOA, then run the remainder of the step.
     * @p usable is per-worker scratch for the per-slot budget row.
     */
    void boundaryFinishZone(const core::BudgetHierarchy &hier,
                            std::vector<double> &usable);

    /** Tail accounting into the outcome (end of the horizon). */
    void finish();

    power::Watts limitWatts() const { return rack_->limitWatts(); }

    /** Exchange slot for hier.exchangeRackAggregate. */
    core::ServerProfile &aggregateSlot() { return aggregate_; }

  private:
    void stepProlog(sim::Tick t);
    void maybeRecompute(sim::Tick t);
    void recomputeFaultAware(sim::Tick now);
    void stepMain(sim::Tick t);
    /** Stream windows forward until @p slot is materialized. */
    void ensureSlot(std::size_t slot);
    void refillWindow();

    const TraceSimConfig &config_;
    const power::PowerModel &model_;
    const core::SoaConfig &soaCfg_;
    const int rackIndex_;
    RackOutcome &out_;
    const sim::Tick end_;
    const double dtS_;

    // Build state.
    std::vector<std::vector<workload::VmMix>> mixes_;
    std::vector<workload::ServerTraceStream> streams_;
    std::unique_ptr<power::Rack> rack_;
    std::unique_ptr<power::RackManager> manager_;
    std::unique_ptr<core::GlobalOverclockingAgent> goa_;
    std::vector<std::unique_ptr<core::ServerOverclockingAgent>>
        soas_;
    /** Windowed SoA replay state over the streams. */
    std::unique_ptr<FleetState> fleet_;
    /** groups[s][v]: core-group id of VM v on server s.  Group ids
     *  are allocated sequentially, so groups[s][v] == v (asserted
     *  at build); the fleet masks rely on that identity. */
    std::vector<std::vector<power::GroupId>> groups_;
    /** candidate[s][v]: does this VM ever request overclocking? */
    std::vector<std::vector<bool>> candidate_;
    /** Deterministic fault schedule (inert when faults disabled). */
    sim::FaultPlan plan_;
    /** Bounded hint queue (null when the ingress is disabled). */
    std::unique_ptr<core::HintIngress> ingress_;
    /** Deterministic adversarial frame source (inert when off). */
    sim::HintStormGenerator storm_;
    /** seq[s][v]: next wire sequence number for server s, VM v. */
    std::vector<std::vector<std::uint64_t>> seq_;

    std::size_t slotsTotal_ = 0;
    std::size_t windowSlots_ = 0;

    // Loop state (resumable across advance/boundary calls).
    sim::Tick t_ = 0;
    sim::Tick nextRecompute_ = 0;
    std::uint64_t capBase_ = 0;
    std::uint64_t cappedTickBase_ = 0;
    std::uint64_t warnBase_ = 0;
    std::uint64_t reqBase_ = 0;
    std::size_t nextCrash_ = 0;
    /** Budget pushes in flight (delayed deliveries), sorted by
     *  deliverAt from nextDelivery_ on. */
    std::vector<core::PendingAssignment> inFlight_;
    std::size_t nextDelivery_ = 0;
    /** First recompute time missed to the current outage (-1 when
     *  the gOA is reachable). */
    sim::Tick outageFirstMissed_ = -1;
    /** Per-server crash time awaiting a fresh accepted budget. */
    std::vector<sim::Tick> crashSince_;
    /** Cap events up to here are blamed on a discrete fault. */
    sim::Tick faultAttributionUntil_ = -1;
    /** Last telemetry slot pushed into the servers. */
    std::size_t lastSlot_ = static_cast<std::size_t>(-1);
    /** Per-server superset of VMs holding an active grant. */
    std::vector<std::uint64_t> activeMask_;
    /** This rack's aggregated profile (HierarchyZone exchange
     *  slot). */
    core::ServerProfile aggregate_;
    /** Per-slot usable row scratch (HierarchyEquivalence). */
    std::vector<double> usableScratch_;
    /** Refill seconds inside the current timed sim method, so they
     *  are booked as generation, not replay. */
    double pendingRefillS_ = 0.0;
};

void
RackRuntime::build()
{
    const auto t0 = Clock::now();

    workload::TraceConfig trace_cfg;
    trace_cfg.end = end_;
    // Per-rack stream: adding or reordering racks never perturbs
    // the draws of the others, and racks can generate in parallel.
    workload::TraceGenerator gen(
        sim::deriveSeed(config_.seed,
                        static_cast<std::uint64_t>(rackIndex_)),
        trace_cfg);

    // One mix + stream per server, interleaved exactly like the
    // materialized serverTrace path consumed the generator, so the
    // streamed samples are bit-identical to the former
    // generate-everything-up-front flow.
    for (int s = 0; s < config_.serversPerRack; ++s) {
        mixes_.push_back(gen.randomVmMix(config_.hardware.cores));
        streams_.push_back(
            gen.serverTraceStream(mixes_.back(), model_));
        std::vector<bool> server_candidates;
        server_candidates.reserve(mixes_.back().size());
        for (const auto &vm : mixes_.back())
            server_candidates.push_back(
                isCandidate(vm, config_.ocUtilThreshold));
        candidate_.push_back(std::move(server_candidates));
    }

    slotsTotal_ = static_cast<std::size_t>(
        (end_ + sim::kSlot - 1) / sim::kSlot);
    windowSlots_ = config_.streamWindow == 0
        ? slotsTotal_
        : static_cast<std::size_t>(config_.streamWindow /
                                   sim::kSlot);

    fleet_ = std::make_unique<FleetState>(config_.ocUtilThreshold);
    for (int s = 0; s < config_.serversPerRack; ++s) {
        fleet_->addServer(
            mixes_[static_cast<std::size_t>(s)].size(),
            candidate_[static_cast<std::size_t>(s)]);
    }
    fleet_->setHorizon(slotsTotal_);

    // First pass: stream the whole horizon once to derive the rack
    // limit from the baseline power profile, accumulating the rack
    // power series in the same order TimeSeries::sum reduced the
    // materialized per-server traces (servers ascending per slot).
    // The summands are the compact columns' float turbo-watts
    // hints, so the P99 limit is window-size and thread-count
    // invariant (the per-sample quantization is), though it differs
    // from the retired double-column path in the last float bits.
    const std::size_t stride = fleet_->totalVms();
    std::vector<double> rack_power_values(slotsTotal_, 0.0);
    while (fleet_->windowEnd() < slotsTotal_) {
        const std::size_t first = fleet_->windowEnd();
        const std::size_t n = fleet_->beginWindow(first,
                                                  windowSlots_);
        std::uint16_t *util = fleet_->utilWindow();
        float *watts = fleet_->wattsWindow();
        for (std::size_t s = 0; s < streams_.size(); ++s) {
            const std::size_t off = fleet_->serverOffset(s);
            streams_[s].generateQuantized(n, util + off, watts + off,
                                          stride);
        }
        for (std::size_t i = 0; i < n; ++i) {
            const float *wrow = watts + i * stride;
            power::Watts rack_watts{0.0};
            for (std::size_t s = 0; s < streams_.size(); ++s) {
                power::Watts server_watts =
                    model_.params().idleWatts;
                const std::size_t off = fleet_->serverOffset(s);
                const std::size_t vms = streams_[s].vms();
                for (std::size_t v = 0; v < vms; ++v)
                    server_watts += power::Watts{
                        static_cast<double>(wrow[off + v])};
                if (s == 0)
                    rack_watts = server_watts;
                else
                    rack_watts += server_watts;
            }
            rack_power_values[first + i] = rack_watts.count();
        }
    }
    const telemetry::TimeSeries rack_power(
        0, sim::kSlot, std::move(rack_power_values));
    const power::Watts limit{rack_power.quantile(0.99) *
                             config_.limitFactor};

    // Rewind for replay: the same windows stream again on demand.
    for (auto &stream : streams_)
        stream.reset();
    fleet_->resetWindows();

    rack_ = std::make_unique<power::Rack>(rackIndex_, limit);
    manager_ = std::make_unique<power::RackManager>(*rack_);

    core::GoaConfig goa_cfg;
    goa_cfg.recomputePeriod = config_.recomputePeriod;
    if (config_.faults.enabled) {
        // Leases sized to tolerate one missed recompute before the
        // sOAs start decaying toward the safe floor.
        goa_cfg.leaseTtl = 2 * config_.recomputePeriod;
        plan_ = sim::FaultPlan::generate(
            config_.faults, config_.seed,
            static_cast<std::uint64_t>(rackIndex_),
            config_.serversPerRack, end_);
    }
    goa_ = std::make_unique<core::GlobalOverclockingAgent>(
        *rack_, model_, goa_cfg);

    const bool faulty_sensor = config_.faults.enabled &&
        (config_.faults.sensorNoiseStd > 0.0 ||
         config_.faults.sensorBias != 0.0);

    for (int s = 0; s < config_.serversPerRack; ++s) {
        power::Server &server = rack_->addServer(&model_);
        std::vector<power::GroupId> server_groups;
        for (const auto &vm : mixes_[static_cast<std::size_t>(s)]) {
            const power::GroupId g = server.addGroup(
                vm.cores, 0.0, power::kTurboMHz, /*priority=*/1);
            // The fleet bitmasks identify VM v with group id v.
            assert(g == static_cast<power::GroupId>(
                            server_groups.size()));
            server_groups.push_back(g);
        }
        groups_.push_back(std::move(server_groups));

        soas_.push_back(
            std::make_unique<core::ServerOverclockingAgent>(
                server, soaCfg_, rack_.get()));
        if (faulty_sensor) {
            // The runtime owns its plan for its whole lifetime, so
            // the plan's address is stable for the run.
            const sim::FaultPlan *plan = &plan_;
            soas_.back()->setPowerSensor(
                [plan, s](power::Watts watts, sim::Tick now) {
                    return watts * plan->sensorFactor(s, now);
                });
        }
        manager_->addListener(soas_.back().get());
        goa_->addAgent(soas_.back().get());
    }
    goa_->assignEvenSplit();

    nextRecompute_ = config_.warmup;
    crashSince_.assign(soas_.size(), -1);
    activeMask_.assign(soas_.size(), 0);

    if (config_.ingress.enabled) {
        ingress_ =
            std::make_unique<core::HintIngress>(config_.ingress);
        seq_.resize(mixes_.size());
        std::size_t max_vms = 1;
        for (std::size_t s = 0; s < mixes_.size(); ++s) {
            seq_[s].assign(mixes_[s].size(), 0);
            max_vms = std::max(max_vms, mixes_[s].size());
        }
        if (config_.storm.enabled) {
            storm_ = sim::HintStormGenerator(
                config_.storm, config_.seed,
                static_cast<std::uint64_t>(rackIndex_),
                config_.serversPerRack, static_cast<int>(max_vms));
        }
    }

    out_.genSeconds += secondsSince(t0);
}

void
RackRuntime::refillWindow()
{
    const auto t0 = Clock::now();
    const std::size_t first = fleet_->windowEnd();
    const std::size_t n = fleet_->beginWindow(first, windowSlots_);
    const std::size_t stride = fleet_->totalVms();
    std::uint16_t *util = fleet_->utilWindow();
    float *watts = fleet_->wattsWindow();
    for (std::size_t s = 0; s < streams_.size(); ++s) {
        const std::size_t off = fleet_->serverOffset(s);
        streams_[s].generateQuantized(n, util + off, watts + off,
                                      stride);
    }
    fleet_->finalizeWindow();
    const double spent = secondsSince(t0);
    out_.genSeconds += spent;
    pendingRefillS_ += spent;
}

void
RackRuntime::ensureSlot(std::size_t slot)
{
    while (slot >= fleet_->windowEnd())
        refillWindow();
}

void
RackRuntime::stepProlog(sim::Tick t)
{
    if (t == config_.warmup) {
        // Snapshot warm-up counters so metrics cover only the
        // evaluation window.
        capBase_ = manager_->stats().capEvents;
        cappedTickBase_ = manager_->stats().cappedTicks;
        warnBase_ = manager_->stats().warnings;
        for (auto &soa : soas_)
            reqBase_ += soa->stats().requests;
    }

    // Scheduled sOA crash-restarts due by now.
    const auto &crashes = plan_.crashes();
    while (nextCrash_ < crashes.size() &&
           crashes[nextCrash_].at <= t) {
        const auto &event = crashes[nextCrash_];
        if (event.server >= 0 &&
            event.server < static_cast<int>(soas_.size())) {
            soas_[static_cast<std::size_t>(event.server)]
                ->crashRestart(t);
            ++out_.faults.soaCrashes;
            if (crashSince_[static_cast<std::size_t>(
                    event.server)] < 0)
                crashSince_[static_cast<std::size_t>(event.server)] =
                    t;
            faultAttributionUntil_ = std::max(
                faultAttributionUntil_, t + kFaultAttribution);
        }
        ++nextCrash_;
    }
}

void
RackRuntime::recomputeFaultAware(sim::Tick now)
{
    // Fault-aware recompute: telemetry faults during the pull,
    // budget pushes queued (possibly delayed/corrupted) instead of
    // applied.
    if (!plan_.enabled()) {
        goa_->recompute(now);
        return;
    }
    const sim::FaultPlan &plan = plan_;
    core::RecomputeFaults rf;
    rf.telemetryAttempts = config_.faults.telemetryAttempts;
    rf.telemetryLost = [&plan, now](int server, int attempt) {
        return plan.telemetryLost(server, now, attempt);
    };
    rf.budgetLost = [&plan, now](int server) {
        return plan.budgetLost(server, now);
    };
    rf.budgetDelay = [&plan, now](int server) {
        return plan.budgetDelay(server, now);
    };
    rf.budgetCorrupt = [&plan, now](int server) {
        return plan.budgetCorrupted(server, now)
            ? plan.corruptionKind(server, now)
            : -1;
    };
    auto batch = goa_->recompute(now, rf);
    // Recompute-rate queue growth (weekly, not per-step):
    // soclint:allow(PERF-001)
    for (auto &pending : batch)
        inFlight_.push_back(std::move(pending));
    std::stable_sort(
        inFlight_.begin() +
            static_cast<std::ptrdiff_t>(nextDelivery_),
        inFlight_.end(),
        [](const core::PendingAssignment &a,
           const core::PendingAssignment &b) {
            return a.deliverAt < b.deliverAt;
        });
}

void
RackRuntime::maybeRecompute(sim::Tick t)
{
    if (t < nextRecompute_)
        return;
    if (plan_.goaDown(t)) {
        // gOA outage: the recompute is skipped and retried every
        // step; sOAs keep enforcing their last budgets, decaying
        // once the lease goes stale (§III-Q5).
        ++out_.faults.recomputesSkipped;
        if (outageFirstMissed_ < 0)
            outageFirstMissed_ = t;
        faultAttributionUntil_ = std::max(
            faultAttributionUntil_, t + kFaultAttribution);
        nextRecompute_ = t + config_.controlStep;
        return;
    }
    if (config_.budgetPath == BudgetPath::HierarchyEquivalence) {
        // Hierarchy plumbing with a provably equal budget: the
        // two-phase pull + splitWeeklyInto over a constant usable
        // row equals recompute(t)'s splitInto bit for bit (see
        // BudgetAllocator::splitWeeklyInto).
        goa_->pullProfiles();
        usableScratch_.assign(
            static_cast<std::size_t>(sim::kSlotsPerWeek),
            rack_->limitWatts().count() *
                (1.0 - goa_->config().budget.safetyFraction));
        goa_->recomputeWithBudget(t, usableScratch_);
    } else {
        recomputeFaultAware(t);
    }
    if (outageFirstMissed_ >= 0) {
        out_.recoverySum += t - outageFirstMissed_;
        ++out_.recoveries;
        outageFirstMissed_ = -1;
    }
    nextRecompute_ += config_.recomputePeriod;
}

void
RackRuntime::stepMain(sim::Tick t)
{
    // soclint:hot-begin(PERF-001) — the replay inner loop: runs
    // once per control step per rack (millions of times at paper
    // scale); window refills are the only allocation-bearing calls
    // and amortize per streamWindow, inside ensureSlot.

    // Deliver queued budget pushes whose flight time is up.
    while (nextDelivery_ < inFlight_.size() &&
           inFlight_[nextDelivery_].deliverAt <= t) {
        goa_->deliver(inFlight_[nextDelivery_], t);
        ++nextDelivery_;
    }

    // A crashed sOA has recovered once it holds a budget accepted
    // after the crash.
    if (plan_.enabled()) {
        for (std::size_t s = 0; s < soas_.size(); ++s) {
            if (crashSince_[s] < 0)
                continue;
            if (soas_[s]->lastAssignmentAt() >= crashSince_[s]) {
                out_.recoverySum += t - crashSince_[s];
                ++out_.recoveries;
                crashSince_[s] = -1;
            }
        }
    }

    // Utilization is slot-constant (5-minute telemetry), so the SoA
    // gather — batch util/turbo-watts push plus want-mask rebuild —
    // runs only when the slot rolls over, not every control step.
    // The stream windows are generated to cover [0, warmup +
    // duration), so the slot is always coverable; a short stream
    // trips the FleetState window assert instead of silently
    // replaying the final sample (see TimeSeries::atTime policy).
    const auto slot = static_cast<std::size_t>(t / sim::kSlot);
    if (slot != lastSlot_) {
        ensureSlot(slot);
        fleet_->applySlot(*rack_, slot);
        lastSlot_ = slot;
    }

    const bool in_eval = t >= config_.warmup;
    if (ingress_) {
        // Ingress path (DESIGN.md §12), three phases per step.
        //
        // Phase 1 — serialize: forge this step's storm frames and
        // the legitimate want/stop transitions as wire messages,
        // offering each to the bounded queue.  active_mask is
        // updated at *offer* time, which keeps it the documented
        // conservative superset: if a start hint is dropped, the VM
        // still wants next step and re-offers; a stale bit is
        // cleared by the !active branch.
        for (std::size_t s = 0; s < soas_.size(); ++s) {
            power::Server &server = rack_->server(s);
            auto &soa = *soas_[s];
            const auto &mix = mixes_[s];
            if (storm_.enabled()) {
                storm_.generate(
                    static_cast<int>(s), t,
                    [&](const core::wire::Frame &frame) {
                        ingress_->offer(frame, t);
                    });
            }
            const std::uint64_t want_mask = fleet_->wantMask(s);
            std::uint64_t pending = want_mask | activeMask_[s];
            while (pending != 0) {
                const int v = std::countr_zero(pending);
                pending &= pending - 1;
                const auto bit = std::uint64_t{1} << v;
                const power::GroupId g =
                    groups_[s][static_cast<std::size_t>(v)];
                const bool want = (want_mask & bit) != 0;
                const bool active = soa.isOverclockActive(g);
                core::wire::HintHeader hdr;
                hdr.server = static_cast<int>(s);
                hdr.vmId = g;
                hdr.issuedAt = t;
                if (want && !active) {
                    hdr.seq =
                        seq_[s][static_cast<std::size_t>(v)]++;
                    core::OverclockRequest request;
                    request.groupId = g;
                    request.cores =
                        mix[static_cast<std::size_t>(v)].cores;
                    request.trigger = core::TriggerKind::Metrics;
                    request.duration = config_.requestChunk;
                    request.priority = 1;
                    ingress_->offer(
                        core::wire::encodeOverclockRequest(hdr,
                                                           request),
                        t);
                    activeMask_[s] |= bit;
                } else if (!want && active) {
                    hdr.seq =
                        seq_[s][static_cast<std::size_t>(v)]++;
                    ingress_->offer(
                        core::wire::encodeStopRequest(hdr), t);
                    activeMask_[s] &= ~bit;
                } else if (!active) {
                    activeMask_[s] &= ~bit;
                }

                if (in_eval && want) {
                    ++out_.wantSteps;
                    const auto *group = server.group(g);
                    const power::FreqMHz eff = group != nullptr
                        ? group->effectiveMHz()
                        : power::kTurboMHz;
                    out_.perf.add(eff / power::kTurboMHz);
                    if (group != nullptr && group->overclocked())
                        ++out_.successSteps;
                }
            }
        }

        // Phase 2 — one batched drain dispatches the surviving
        // hints into the agents.  The sink bounds-checks the
        // addressed server/group (a forged frame may name
        // anything); hints it cannot place are sink drops.
        ingress_->drain(
            t, [&](const core::wire::ParsedHint &hint) {
                if (hint.server < 0 ||
                    hint.server >= static_cast<int>(soas_.size()))
                    return false;
                const auto &groups =
                    groups_[static_cast<std::size_t>(hint.server)];
                switch (hint.kind) {
                case core::wire::HintKind::OverclockRequest:
                    if (hint.vmId < 0 ||
                        hint.vmId >=
                            static_cast<std::int32_t>(groups.size()))
                        return false;
                    soas_[static_cast<std::size_t>(hint.server)]
                        ->requestOverclock(hint.request, t);
                    return true;
                case core::wire::HintKind::StopRequest:
                    if (hint.vmId < 0 ||
                        hint.vmId >=
                            static_cast<std::int32_t>(groups.size()))
                        return false;
                    soas_[static_cast<std::size_t>(hint.server)]
                        ->stopOverclock(hint.vmId, t);
                    return true;
                default:
                    // Metrics/schedule/exhaustion hints have no
                    // consumer in the trace sim (no WI layer);
                    // counted as sink drops, not crashes.
                    return false;
                }
            });

        // Phase 3 — control ticks run after the drain so every sOA
        // sees this step's surviving hints.
        for (auto &soa : soas_)
            soa->tick(t);
    } else
    for (std::size_t s = 0; s < soas_.size(); ++s) {
        power::Server &server = rack_->server(s);
        auto &soa = *soas_[s];
        const auto &mix = mixes_[s];
        // Only VMs that want to overclock this slot, or that may
        // still hold an active grant, need per-step processing; for
        // everyone else the old per-VM walk was a no-op.
        // active_mask is a conservative superset of the truly
        // active grants (bits are set on request, cleared when a
        // processed VM turns out inactive), so no grant can be
        // missed by the union.
        const std::uint64_t want_mask = fleet_->wantMask(s);
        std::uint64_t pending = want_mask | activeMask_[s];
        while (pending != 0) {
            const int v = std::countr_zero(pending);
            pending &= pending - 1;
            const auto bit = std::uint64_t{1} << v;
            const power::GroupId g =
                groups_[s][static_cast<std::size_t>(v)];
            const bool want = (want_mask & bit) != 0;
            const bool active = soa.isOverclockActive(g);
            if (want && !active) {
                core::OverclockRequest request;
                request.groupId = g;
                request.cores =
                    mix[static_cast<std::size_t>(v)].cores;
                request.trigger = core::TriggerKind::Metrics;
                request.duration = config_.requestChunk;
                request.priority = 1;
                soa.requestOverclock(request, t);
                activeMask_[s] |= bit;
            } else if (!want && active) {
                soa.stopOverclock(g, t);
                activeMask_[s] &= ~bit;
            } else if (!active) {
                activeMask_[s] &= ~bit;
            }

            if (in_eval && want) {
                ++out_.wantSteps;
                const auto *group = server.group(g);
                const power::FreqMHz eff = group != nullptr
                    ? group->effectiveMHz()
                    : power::kTurboMHz;
                out_.perf.add(eff / power::kTurboMHz);
                if (group != nullptr && group->overclocked())
                    ++out_.successSteps;
            }
        }
        soa.tick(t);
    }
    const std::uint64_t cap_before = manager_->stats().capEvents;
    manager_->tick(t);

    if (in_eval && plan_.enabled()) {
        const std::uint64_t cap_delta =
            manager_->stats().capEvents - cap_before;
        if (cap_delta > 0) {
            bool attributed = t <= faultAttributionUntil_ ||
                plan_.goaDown(t);
            for (std::size_t s = 0;
                 !attributed && s < soas_.size(); ++s) {
                attributed = soas_[s]->leaseStale(t);
            }
            if (attributed)
                out_.capEventsFaultAttributed += cap_delta;
        }
    }

    if (in_eval) {
        out_.rackUtil.add(rack_->utilization());
        out_.energyJoules +=
            power::energyOver(rack_->powerWatts(), dtS_);
        if (manager_->capping()) {
            double penalty = 0.0;
            int affected = 0;
            for (const auto &server : rack_->servers()) {
                const int cores = server->cappedNonOverclockCores();
                penalty += server->cappingPenalty() * cores;
                affected += cores;
            }
            if (affected > 0)
                out_.penalty.add(penalty / affected);
        }
    }
    // soclint:hot-end(PERF-001)
}

void
RackRuntime::advance(sim::Tick until)
{
    const auto t0 = Clock::now();
    pendingRefillS_ = 0.0;
    for (; t_ < until; t_ += config_.controlStep) {
        stepProlog(t_);
        if (config_.budgetPath != BudgetPath::HierarchyZone)
            maybeRecompute(t_);
        stepMain(t_);
    }
    out_.simSeconds += secondsSince(t0) - pendingRefillS_;
}

void
RackRuntime::boundaryCollect(sim::Tick t,
                             core::ProfileAggregator &agg)
{
    assert(t == t_ && "lockstep boundary out of phase");
    assert(config_.budgetPath == BudgetPath::HierarchyZone);
    const auto t0 = Clock::now();
    pendingRefillS_ = 0.0;
    stepProlog(t);
    const auto &profiles = goa_->pullProfiles();
    agg.aggregate(profiles.data(), profiles.size(), aggregate_);
    out_.simSeconds += secondsSince(t0) - pendingRefillS_;
}

void
RackRuntime::boundaryFinishZone(const core::BudgetHierarchy &hier,
                                std::vector<double> &usable)
{
    const auto t0 = Clock::now();
    pendingRefillS_ = 0.0;
    const core::ProfileTemplate &budget =
        hier.rackBudget(rackIndex_);
    usable.resize(static_cast<std::size_t>(sim::kSlotsPerWeek));
    for (std::size_t slot = 0; slot < usable.size(); ++slot) {
        usable[slot] = budget.predict(
            static_cast<sim::Tick>(slot) * sim::kSlot);
    }
    goa_->recomputeWithBudget(t_, usable);
    // Fleet-scale footprint trim: profiles are re-pulled (cheap,
    // cache-served) at the next boundary; safe because the
    // hierarchical paths run with faults disabled.
    goa_->releaseProfiles();
    stepMain(t_);
    t_ += config_.controlStep;
    out_.simSeconds += secondsSince(t0) - pendingRefillS_;
}

void
RackRuntime::finish()
{
    const auto t0 = Clock::now();
    out_.capEvents = manager_->stats().capEvents - capBase_;
    out_.cappedTicks =
        manager_->stats().cappedTicks - cappedTickBase_;
    out_.warnings = manager_->stats().warnings - warnBase_;
    std::uint64_t requests = 0;
    for (auto &soa : soas_)
        requests += soa->stats().requests;
    out_.requests = requests - reqBase_;

    if (plan_.enabled()) {
        const core::GoaStats &goa_stats = goa_->stats();
        out_.faults.telemetryRetries = goa_stats.telemetryRetries;
        out_.faults.telemetryDrops = goa_stats.staleProfiles;
        out_.faults.budgetDrops = goa_stats.assignmentsDropped;
        out_.faults.budgetDelays = goa_stats.assignmentsDelayed;
        out_.faults.budgetRejects = goa_stats.assignmentsRejected;
        for (const auto &outage : plan_.outages())
            if (outage.start < end_)
                ++out_.faults.goaOutages;
        for (auto &soa : soas_)
            out_.staleLeaseTicks += soa->stats().staleLeaseTicks;
    }

    if (ingress_) {
        out_.ingress.merge(ingress_->stats());
        for (auto &soa : soas_)
            out_.flapDenied += soa->stats().flapDenied;
    }
    out_.simSeconds += secondsSince(t0);
}

/** Merge per-rack outcomes in rack order: deterministic regardless
 *  of how racks were scheduled over threads. */
TraceSimResult
mergeOutcomes(const std::vector<RackOutcome> &outcomes)
{
    TraceSimResult result;
    sim::OnlineStats penalty_stats;
    sim::OnlineStats rack_util_stats;
    sim::OnlineStats perf_stats;
    sim::Tick recovery_sum = 0;
    for (const auto &out : outcomes) {
        result.capEvents += out.capEvents;
        result.cappedTicks += out.cappedTicks;
        result.warnings += out.warnings;
        result.requests += out.requests;
        result.wantSteps += out.wantSteps;
        result.successSteps += out.successSteps;
        result.energyJoules += out.energyJoules;
        penalty_stats.merge(out.penalty);
        rack_util_stats.merge(out.rackUtil);
        perf_stats.merge(out.perf);
        result.faults.merge(out.faults);
        result.capEventsFaultAttributed +=
            out.capEventsFaultAttributed;
        result.staleLeaseTicks += out.staleLeaseTicks;
        result.recoveries += out.recoveries;
        recovery_sum += out.recoverySum;
        result.ingress.merge(out.ingress);
        result.flapDenied += out.flapDenied;
        result.genSeconds += out.genSeconds;
        result.simSeconds += out.simSeconds;
    }
    result.meanRecoveryS = result.recoveries > 0
        ? static_cast<double>(recovery_sum) /
            static_cast<double>(result.recoveries) / sim::kSecond
        : 0.0;
    result.successRate = result.wantSteps > 0
        ? static_cast<double>(result.successSteps) /
            static_cast<double>(result.wantSteps)
        : 1.0;
    result.cappingPenalty = penalty_stats.mean();
    result.normPerformance =
        perf_stats.count() > 0 ? perf_stats.mean() : 1.0;
    result.meanRackUtil = rack_util_stats.mean();
    return result;
}

/** Chunk grain shared by both runners: contiguous rack ranges off
 *  the atomic cursor, sized so each thread claims a few chunks. */
std::size_t
rackGrain(std::size_t n_racks, int threads)
{
    return std::clamp<std::size_t>(
        n_racks / (4 * static_cast<std::size_t>(threads)), 1, 16);
}

/**
 * Independent-racks runner (PerRack and HierarchyEquivalence):
 * each rack is built, simulated and *freed* inside its chunk, so
 * memory stays O(racks in flight x streamWindow), not O(fleet x
 * horizon) — what makes the 7.1k-rack runs of EXPERIMENTS.md
 * feasible.  Outcomes live in per-rack slots merged in rack order,
 * so neither the chunk grain nor the thread count can affect
 * results.
 */
TraceSimResult
runIndependent(const TraceSimConfig &config,
               const power::PowerModel &model,
               const core::SoaConfig &soa_cfg)
{
    const std::size_t n_racks =
        static_cast<std::size_t>(std::max(0, config.racks));
    const int threads = std::min<int>(
        sim::ThreadPool::resolveThreads(config.threads),
        std::max<int>(1, config.racks));
    sim::ThreadPool pool(threads);

    std::vector<RackOutcome> outcomes(n_racks);
    const sim::Tick end = config.warmup + config.duration;
    pool.parallelForChunked(
        n_racks, rackGrain(n_racks, threads),
        [&](std::size_t begin, std::size_t chunk_end) {
            for (std::size_t r = begin; r < chunk_end; ++r) {
                RackRuntime runtime(config, model, soa_cfg,
                                    static_cast<int>(r),
                                    outcomes[r]);
                runtime.build();
                runtime.advance(end);
                runtime.finish();
            }
        });
    return mergeOutcomes(outcomes);
}

/**
 * Lockstep runner (HierarchyZone): every rack stays resident;
 * between recompute boundaries the racks advance in parallel, then
 * each boundary runs three phases — parallel profile pull +
 * per-rack aggregation, the *serial* zone recompute (aggregate
 * exchange in rack order + dirty-tracked hierarchy re-split, timed
 * as hierSeconds), and the parallel budget push + boundary step.
 * Every phase writes only rack-owned state (the hierarchy is
 * written solely by the serial phase), so results are bit-identical
 * at any thread count, like the independent runner.
 */
TraceSimResult
runLockstepZone(const TraceSimConfig &config,
                const power::PowerModel &model,
                const core::SoaConfig &soa_cfg)
{
    const std::size_t n_racks =
        static_cast<std::size_t>(std::max(0, config.racks));
    const int threads = std::min<int>(
        sim::ThreadPool::resolveThreads(config.threads),
        std::max<int>(1, config.racks));
    sim::ThreadPool pool(threads);
    const std::size_t grain = rackGrain(n_racks, threads);

    std::vector<RackOutcome> outcomes(n_racks);
    std::vector<std::unique_ptr<RackRuntime>> runtimes(n_racks);
    pool.parallelForChunked(
        n_racks, grain,
        [&](std::size_t begin, std::size_t chunk_end) {
            for (std::size_t r = begin; r < chunk_end; ++r) {
                runtimes[r] = std::make_unique<RackRuntime>(
                    config, model, soa_cfg, static_cast<int>(r),
                    outcomes[r]);
                runtimes[r]->build();
            }
        });

    // Zone limit: the sum of the rack limits, in rack order.
    power::Watts zone_limit{0.0};
    for (const auto &runtime : runtimes)
        zone_limit += runtime->limitWatts();

    core::HierarchyConfig hier_cfg;
    hier_cfg.racksPerRow = config.racksPerRow;
    core::BudgetHierarchy hierarchy(model, hier_cfg);
    for (std::size_t r = 0; r < n_racks; ++r)
        hierarchy.addRackAggregate(core::ServerProfile{});

    const sim::Tick end = config.warmup + config.duration;
    const sim::Tick cs = config.controlStep;
    // The recompute schedule every rack shares: due times start at
    // warmup and advance by recomputePeriod per executed recompute,
    // executing at the first control step at/after the due time —
    // exactly the per-rack `t >= next_recompute` cadence.
    sim::Tick sched = config.warmup;
    sim::Tick prev_boundary = -cs;
    double hier_seconds = 0.0;
    std::uint64_t hier_recomputes = 0;
    for (;;) {
        const sim::Tick due_step = ((sched + cs - 1) / cs) * cs;
        const sim::Tick boundary =
            std::max(due_step, prev_boundary + cs);
        if (boundary >= end)
            break;

        pool.parallelForChunked(
            n_racks, grain,
            [&](std::size_t begin, std::size_t chunk_end) {
                core::ProfileAggregator aggregator;
                for (std::size_t r = begin; r < chunk_end; ++r) {
                    runtimes[r]->advance(boundary);
                    runtimes[r]->boundaryCollect(boundary,
                                                 aggregator);
                }
            });

        {
            const auto t0 = Clock::now();
            for (std::size_t r = 0; r < n_racks; ++r)
                hierarchy.exchangeRackAggregate(
                    static_cast<int>(r),
                    runtimes[r]->aggregateSlot());
            hierarchy.recompute(zone_limit);
            hier_seconds += secondsSince(t0);
            ++hier_recomputes;
        }

        pool.parallelForChunked(
            n_racks, grain,
            [&](std::size_t begin, std::size_t chunk_end) {
                std::vector<double> usable;
                for (std::size_t r = begin; r < chunk_end; ++r)
                    runtimes[r]->boundaryFinishZone(hierarchy,
                                                    usable);
            });

        prev_boundary = boundary;
        sched += config.recomputePeriod;
    }

    pool.parallelForChunked(
        n_racks, grain,
        [&](std::size_t begin, std::size_t chunk_end) {
            for (std::size_t r = begin; r < chunk_end; ++r) {
                runtimes[r]->advance(end);
                runtimes[r]->finish();
                runtimes[r].reset();
            }
        });

    TraceSimResult result = mergeOutcomes(outcomes);
    result.hierSeconds = hier_seconds;
    result.hierarchyRecomputes = hier_recomputes;
    result.hierarchyStats = hierarchy.stats();
    return result;
}

} // namespace

TraceSimResult
runTraceSim(const TraceSimConfig &config)
{
    config.validate();
    const power::PowerModel model(config.hardware);
    core::SoaConfig soa_cfg =
        core::SoaConfig::forPolicy(config.policy);
    soa_cfg.controlPeriod = config.controlStep;
    // Trace studies stress the power path; keep the lifetime budget
    // generous enough that peaks fit (the paper's operators size the
    // budget to the workloads' requirements).
    soa_cfg.overclockFraction = 0.25;
    soa_cfg.templateWindow = config.templateWindow;
    if (config.ingress.enabled)
        soa_cfg.flapHoldoff = config.ingress.flapHoldoff;

    if (config.budgetPath == BudgetPath::HierarchyZone)
        return runLockstepZone(config, model, soa_cfg);
    return runIndependent(config, model, soa_cfg);
}

std::vector<TraceSimResult>
runTraceSimBatch(const std::vector<TraceSimConfig> &configs,
                 int threads)
{
    std::vector<TraceSimResult> results(configs.size());
    sim::ThreadPool pool(std::min<int>(
        sim::ThreadPool::resolveThreads(threads),
        static_cast<int>(std::max<std::size_t>(1, configs.size()))));
    // Grain 1: configs are few and heavyweight (whole runs), so the
    // atomic cursor load-balances them individually; each result
    // lands in its own slot, keeping output order-independent.
    pool.parallelForChunked(
        configs.size(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                TraceSimConfig cfg = configs[i];
                cfg.threads = 1; // the batch pool is the parallelism
                results[i] = runTraceSim(cfg);
            }
        });
    return results;
}

} // namespace cluster
} // namespace soc
