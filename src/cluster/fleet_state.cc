#include "cluster/fleet_state.hh"

#include <cassert>

#include "power/server.hh"

namespace soc
{
namespace cluster
{

void
FleetState::addServer(std::size_t vms,
                      const std::vector<bool> &candidate)
{
    assert(vms == candidate.size());
    assert(vms <= kMaxVmsPerServer);
    assert(windowSlots_ == 0 &&
           "FleetState: addServer after beginWindow");

    offsets_.push_back(totalVms());
    counts_.push_back(vms);

    std::uint64_t mask = 0;
    for (std::size_t v = 0; v < vms; ++v)
        if (candidate[v])
            mask |= std::uint64_t{1} << v;
    candidate_.push_back(mask);
    want_.push_back(0);
}

void
FleetState::setHorizon(std::size_t slots)
{
    assert(slots > 0);
    slots_ = slots;
}

std::size_t
FleetState::beginWindow(std::size_t firstSlot, std::size_t maxSlots)
{
    assert(slots_ > 0 && "FleetState: setHorizon before windows");
    assert(maxSlots > 0);
    assert(firstSlot == windowEnd() &&
           "FleetState: windows must be streamed in order");
    assert(firstSlot < slots_);

    windowBegin_ = firstSlot;
    windowSlots_ = std::min(maxSlots, slots_ - firstSlot);
    windowFinal_ = false;
    const std::size_t total = totalVms();
    utilBySlot_.resize(windowSlots_ * total);
    wattsBySlot_.resize(windowSlots_ * total);
    wantBySlot_.resize(windowSlots_ * counts_.size());
    return windowSlots_;
}

void
FleetState::finalizeWindow()
{
    assert(windowSlots_ > 0);
    const std::size_t total = totalVms();
    const std::size_t servers = counts_.size();
    for (std::size_t slot = 0; slot < windowSlots_; ++slot) {
        const double *urow = utilBySlot_.data() + slot * total;
        for (std::size_t s = 0; s < servers; ++s) {
            const std::size_t base = offsets_[s];
            std::uint64_t above = 0;
            for (std::size_t v = 0; v < counts_[s]; ++v)
                if (urow[base + v] >= threshold_)
                    above |= std::uint64_t{1} << v;
            wantBySlot_[slot * servers + s] = above & candidate_[s];
        }
    }
    windowFinal_ = true;
}

void
FleetState::resetWindows()
{
    windowBegin_ = 0;
    windowSlots_ = 0;
    windowFinal_ = false;
}

void
FleetState::applySlot(power::Rack &rack, std::size_t slot)
{
    // Same out-of-range stance as TimeSeries::atTime: the windows
    // are streamed to span the whole horizon by construction, so
    // replaying outside the current one is a bug, caught loudly here
    // rather than replaying stale samples.
    assert(windowFinal_ && "FleetState: applySlot before finalize");
    assert(slot >= windowBegin_ && slot < windowEnd() &&
           "FleetState: slot outside the streamed window");
    lastSlot_ = slot;
    const std::size_t row = slot - windowBegin_;
    const std::size_t total = totalVms();
    const std::size_t servers = counts_.size();
    // soclint:hot-begin(PERF-001) — once per closed telemetry slot,
    // the replay inner loop's data feed: no per-call allocation.
    const double *urow = utilBySlot_.data() + row * total;
    const double *wrow = wattsBySlot_.data() + row * total;
    const std::uint64_t *wants = wantBySlot_.data() + row * servers;
    for (std::size_t s = 0; s < servers; ++s) {
        want_[s] = wants[s];
        rack.server(s).setUtilsAndTurboWatts(
            counts_[s], urow + offsets_[s], wrow + offsets_[s]);
    }
    // soclint:hot-end(PERF-001)
}

} // namespace cluster
} // namespace soc
