#include "cluster/fleet_state.hh"

#include <cassert>

#include "power/server.hh"

namespace soc
{
namespace cluster
{

void
FleetState::addServer(const workload::ServerTrace &trace,
                      const std::vector<bool> &candidate)
{
    const std::size_t vms = trace.vmUtil.size();
    assert(vms == trace.vmTurboWatts.size());
    assert(vms == candidate.size());
    assert(vms <= kMaxVmsPerServer);

    offsets_.push_back(utilSamples_.size());
    counts_.push_back(vms);

    std::uint64_t mask = 0;
    for (std::size_t v = 0; v < vms; ++v) {
        const auto &util = trace.vmUtil[v];
        const auto &watts = trace.vmTurboWatts[v];
        assert(util.size() == watts.size());
        if (slots_ == 0)
            slots_ = util.size();
        assert(util.size() == slots_);
        utilSamples_.push_back(util.values().data());
        wattsSamples_.push_back(watts.values().data());
        if (candidate[v])
            mask |= std::uint64_t{1} << v;
    }
    candidate_.push_back(mask);
    want_.push_back(0);
    // Registering a server invalidates any existing transpose.
    utilBySlot_.clear();
    wattsBySlot_.clear();
    wantBySlot_.clear();
}

void
FleetState::finalize()
{
    const std::size_t total = utilSamples_.size();
    const std::size_t servers = counts_.size();
    utilBySlot_.resize(slots_ * total);
    wattsBySlot_.resize(slots_ * total);
    wantBySlot_.resize(slots_ * servers);
    for (std::size_t slot = 0; slot < slots_; ++slot) {
        double *urow = utilBySlot_.data() + slot * total;
        double *wrow = wattsBySlot_.data() + slot * total;
        for (std::size_t i = 0; i < total; ++i) {
            urow[i] = utilSamples_[i][slot];
            wrow[i] = wattsSamples_[i][slot];
        }
        for (std::size_t s = 0; s < servers; ++s) {
            const std::size_t base = offsets_[s];
            std::uint64_t above = 0;
            for (std::size_t v = 0; v < counts_[s]; ++v)
                if (urow[base + v] >= threshold_)
                    above |= std::uint64_t{1} << v;
            wantBySlot_[slot * servers + s] =
                above & candidate_[s];
        }
    }
}

void
FleetState::applySlot(power::Rack &rack, std::size_t slot)
{
    // Same out-of-range stance as TimeSeries::atTime: the traces
    // span the whole horizon by construction, so running past them
    // is a bug, caught loudly here rather than replaying the final
    // slot forever.
    assert(slot < slots_ && "FleetState: slot past trace end");
    if (utilBySlot_.empty())
        finalize();
    lastSlot_ = slot;
    const std::size_t total = utilSamples_.size();
    const std::size_t servers = counts_.size();
    const double *urow = utilBySlot_.data() + slot * total;
    const double *wrow = wattsBySlot_.data() + slot * total;
    const std::uint64_t *wants = wantBySlot_.data() + slot * servers;
    for (std::size_t s = 0; s < servers; ++s) {
        want_[s] = wants[s];
        rack.server(s).setUtilsAndTurboWatts(
            counts_[s], urow + offsets_[s], wrow + offsets_[s]);
    }
}

} // namespace cluster
} // namespace soc
