#include "cluster/fleet_state.hh"

#include <cassert>
#include <cmath>

#include "power/server.hh"
#include "sim/quant.hh"

namespace soc
{
namespace cluster
{

namespace
{

/** Smallest q with dequantUtil(q) >= threshold (65536 when no
 *  uint16 reaches it), so `q >= qThreshold` is exactly
 *  `dequantUtil(q) >= threshold`. */
std::uint32_t
quantThreshold(double threshold)
{
    if (!(threshold > 0.0))
        return 0; // every sample wants (or threshold is NaN: none
                  // would pass a double compare either — but a NaN
                  // threshold is rejected by config validation)
    if (threshold > 1.0)
        return static_cast<std::uint32_t>(sim::kUtilQuantMax) + 1;
    std::uint32_t q = static_cast<std::uint32_t>(
        std::ceil(threshold * 65535.0));
    // ceil() in FP can land one step off the exact boundary; nudge
    // with the real dequantization expression.
    while (q > 0 &&
           sim::dequantUtil(static_cast<std::uint16_t>(q - 1)) >=
               threshold)
        --q;
    while (q <= sim::kUtilQuantMax &&
           sim::dequantUtil(static_cast<std::uint16_t>(q)) <
               threshold)
        ++q;
    return q;
}

} // namespace

FleetState::FleetState(double ocUtilThreshold)
    : threshold_(ocUtilThreshold),
      qThreshold_(quantThreshold(ocUtilThreshold))
{
}

double
FleetState::util(std::size_t server, std::size_t v) const
{
    return sim::dequantUtil(
        utilBySlot_[(lastSlot_ - windowBegin_) * totalVms() +
                    offsets_[server] + v]);
}

void
FleetState::addServer(std::size_t vms,
                      const std::vector<bool> &candidate)
{
    assert(vms == candidate.size());
    assert(vms <= kMaxVmsPerServer);
    assert(windowSlots_ == 0 &&
           "FleetState: addServer after beginWindow");

    offsets_.push_back(totalVms());
    counts_.push_back(vms);

    std::uint64_t mask = 0;
    for (std::size_t v = 0; v < vms; ++v)
        if (candidate[v])
            mask |= std::uint64_t{1} << v;
    candidate_.push_back(mask);
    want_.push_back(0);
}

void
FleetState::setHorizon(std::size_t slots)
{
    assert(slots > 0);
    slots_ = slots;
}

std::size_t
FleetState::beginWindow(std::size_t firstSlot, std::size_t maxSlots)
{
    assert(slots_ > 0 && "FleetState: setHorizon before windows");
    assert(maxSlots > 0);
    assert(firstSlot == windowEnd() &&
           "FleetState: windows must be streamed in order");
    assert(firstSlot < slots_);

    windowBegin_ = firstSlot;
    windowSlots_ = std::min(maxSlots, slots_ - firstSlot);
    windowFinal_ = false;
    const std::size_t total = totalVms();
    utilBySlot_.resize(windowSlots_ * total);
    wattsBySlot_.resize(windowSlots_ * total);
    wantBySlot_.resize(windowSlots_ * counts_.size());
    return windowSlots_;
}

void
FleetState::finalizeWindow()
{
    assert(windowSlots_ > 0);
    const std::size_t total = totalVms();
    const std::size_t servers = counts_.size();
    for (std::size_t slot = 0; slot < windowSlots_; ++slot) {
        const std::uint16_t *urow = utilBySlot_.data() + slot * total;
        for (std::size_t s = 0; s < servers; ++s) {
            const std::size_t base = offsets_[s];
            std::uint64_t above = 0;
            for (std::size_t v = 0; v < counts_[s]; ++v)
                if (urow[base + v] >= qThreshold_)
                    above |= std::uint64_t{1} << v;
            wantBySlot_[slot * servers + s] = above & candidate_[s];
        }
    }
    windowFinal_ = true;
}

void
FleetState::resetWindows()
{
    windowBegin_ = 0;
    windowSlots_ = 0;
    windowFinal_ = false;
}

void
FleetState::applySlot(power::Rack &rack, std::size_t slot)
{
    // Same out-of-range stance as TimeSeries::atTime: the windows
    // are streamed to span the whole horizon by construction, so
    // replaying outside the current one is a bug, caught loudly here
    // rather than replaying stale samples.
    assert(windowFinal_ && "FleetState: applySlot before finalize");
    assert(slot >= windowBegin_ && slot < windowEnd() &&
           "FleetState: slot outside the streamed window");
    lastSlot_ = slot;
    const std::size_t row = slot - windowBegin_;
    const std::size_t total = totalVms();
    const std::size_t servers = counts_.size();
    // soclint:hot-begin(PERF-001) — once per closed telemetry slot,
    // the replay inner loop's data feed: no per-call allocation.
    const std::uint16_t *urow = utilBySlot_.data() + row * total;
    const float *wrow = wattsBySlot_.data() + row * total;
    const std::uint64_t *wants = wantBySlot_.data() + row * servers;
    for (std::size_t s = 0; s < servers; ++s) {
        want_[s] = wants[s];
        rack.server(s).setUtilsAndTurboWatts(
            counts_[s], urow + offsets_[s], wrow + offsets_[s]);
    }
    // soclint:hot-end(PERF-001)
}

} // namespace cluster
} // namespace soc
