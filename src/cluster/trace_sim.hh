/**
 * @file
 * Trace-driven datacenter simulation (§V-B).
 *
 * Replays multi-week synthetic production traces (TraceGenerator)
 * against racks of servers managed by one of the Table I policies.
 * VMs whose trace utilization crosses an overclock threshold request
 * overclocking from their server's sOA; the rack manager enforces
 * warnings/capping; the gOA recomputes heterogeneous budgets weekly
 * from the telemetry collected during the warm-up week.
 *
 * Outputs the four Table I metrics: power-capping events,
 * overclocking success rate, capping penalty on non-overclocked
 * VMs, and normalized performance (mean effective frequency of
 * overclock-seeking VMs over max turbo).
 */

#ifndef SOC_CLUSTER_TRACE_SIM_HH
#define SOC_CLUSTER_TRACE_SIM_HH

#include <cstdint>
#include <vector>

#include "core/budget_hierarchy.hh"
#include "core/hint_ingress.hh"
#include "core/policy.hh"
#include "power/power_model.hh"
#include "sim/fault_injector.hh"
#include "sim/hint_storm.hh"
#include "sim/time.hh"
#include "telemetry/time_series.hh"

namespace soc
{
namespace cluster
{

/** Power-draw tiers of Table I (how tight the rack limit is). */
enum class PowerTier { High, Medium, Low };

/** Which budget path the gOAs recompute through (DESIGN.md §13). */
enum class BudgetPath {
    /** Each rack's gOA splits its own limit flat — the seed
     *  behavior, always available. */
    PerRack,
    /**
     * The hierarchical two-phase recompute (pullProfiles +
     * recomputeWithBudget) fed a constant usable row equal to the
     * rack limit minus the safety margin: exercises the hierarchy
     * plumbing while staying bit-identical to PerRack (the
     * splitWeeklyInto equivalence guarantee) — the verification
     * mode for small fleets.
     */
    HierarchyEquivalence,
    /**
     * Full rack -> row -> zone tier: racks advance in lockstep
     * between recompute boundaries; at each boundary every gOA's
     * profiles are aggregated into core::BudgetHierarchy, the zone
     * limit (the sum of the rack limits) is re-split incrementally,
     * and each gOA pushes its rack's budget share down to its sOAs.
     * Requires faults disabled (the lockstep orchestrator has no
     * outage-retry path).
     */
    HierarchyZone,
};

/** Configuration of one trace-driven run. */
struct TraceSimConfig {
    core::PolicyKind policy = core::PolicyKind::SmartOClock;
    int racks = 4;
    int serversPerRack = 28;
    /** Budgets/templates learn during warm-up; metrics cover the
     *  evaluation window that follows. */
    sim::Tick warmup = sim::kWeek;
    sim::Tick duration = sim::kWeek;
    sim::Tick controlStep = 30 * sim::kSecond;
    /** Rack limit = limitFactor x baseline P99 rack power. */
    double limitFactor = 1.10;
    /** A VM requests overclocking when its utilization crosses
     *  this (its workload peak). */
    double ocUtilThreshold = 0.55;
    sim::Tick requestChunk = 10 * sim::kMinute;
    std::uint64_t seed = 1;
    power::PowerModelParams hardware;
    /** gOA budget recompute period (the paper recomputes weekly;
     *  chaos studies shorten it so outages hit mid-evaluation). */
    sim::Tick recomputePeriod = sim::kWeek;
    /**
     * Telemetry window the sOAs' template aggregators retain, as a
     * multiple of the 5-minute slot.  0 (default) keeps all history
     * — the seed behavior; the paper's agents predict from the
     * prior week (sim::kWeek).
     */
    sim::Tick templateWindow = 0;
    /**
     * Fault injection (chaos harness).  Disabled by default; when
     * enabled, each rack draws a deterministic FaultPlan from the
     * run seed, budget assignments carry a lease of
     * 2 x recomputePeriod, and the Table I metrics are joined by the
     * fault counters in TraceSimResult.
     */
    sim::FaultConfig faults;
    /**
     * Hint ingestion boundary (DESIGN.md §12).  Disabled by default:
     * WI requests then reach the sOAs through the original direct
     * call path, bit-identical to the seed behavior.  When enabled,
     * every per-rack hint is serialized as a core::wire frame,
     * offered to a bounded per-rack HintIngress (fail-closed
     * parsing, dedup, overflow drop policy) and dispatched in one
     * batched drain per control step; SoaConfig::flapHoldoff is
     * taken from ingress.flapHoldoff.
     */
    core::HintIngressConfig ingress;
    /**
     * Adversarial hint-storm catalog (requires ingress.enabled):
     * each rack derives a deterministic sim::HintStormGenerator
     * from the run seed and pours its forged frames into the same
     * ingress the legitimate hints use.
     */
    sim::HintStormConfig storm;
    /**
     * Budget recompute topology.  PerRack (default) keeps every
     * result bit-identical to the seed; HierarchyZone is the
     * paper-scale path (racks/s gated at 7.1k racks by
     * bench_check.sh); HierarchyEquivalence runs the hierarchy
     * plumbing with a budget provably equal to PerRack's, for
     * equivalence tests.  The hierarchical paths reject
     * faults.enabled (validate()).
     */
    BudgetPath budgetPath = BudgetPath::PerRack;
    /** Racks per row of the HierarchyZone tier. */
    int racksPerRow = 8;
    /**
     * Streaming-replay window: how much trace each rack holds
     * materialized at once, as a multiple of the 5-minute slot
     * (sim::kDay default keeps a rack's replay footprint at
     * VMs x 288 samples regardless of horizon).  0 materializes the
     * whole horizon in one window.  Replay results are bit-identical
     * for any window size — the generator cursors produce the same
     * sample stream however it is chunked (enforced by test).
     */
    sim::Tick streamWindow = sim::kDay;
    /**
     * Worker threads for trace generation and the per-rack control
     * loops (racks are fully independent, see DESIGN.md "Threading
     * model").  0 means hardware concurrency.  Results are
     * bit-identical for any thread count: every rack draws from its
     * own seed-derived RNG stream and owns its accumulators, which
     * are merged in rack order after the loop.
     */
    int threads = 0;

    /** Preset limit factors for the Table I cluster tiers. */
    static double tierLimitFactor(PowerTier tier);

    /**
     * Reject nonsensical configurations up front with a clear
     * message (std::invalid_argument) instead of dividing by zero
     * or looping forever deep inside the run: racks and
     * serversPerRack must be >= 1, limitFactor > 0, controlStep > 0,
     * warmup/duration non-negative with a positive sum, and the
     * fault knobs in range.
     */
    void validate() const;
};

/** Metrics of one run (Table I row, un-normalized). */
struct TraceSimResult {
    std::uint64_t capEvents = 0;
    /** Control steps spent enforcing a cap (severity measure). */
    std::uint64_t cappedTicks = 0;
    std::uint64_t warnings = 0;
    std::uint64_t requests = 0;
    /** Per-step overclock want/got accounting. */
    std::uint64_t wantSteps = 0;
    std::uint64_t successSteps = 0;
    /** Fraction of want-steps actually spent overclocked. */
    double successRate = 0.0;
    /** Mean frequency penalty of capped non-overclock VMs. */
    double cappingPenalty = 0.0;
    /** Mean effective frequency of overclock-seeking VMs during
     *  want-steps, relative to max turbo. */
    double normPerformance = 1.0;
    /** Mean rack power utilization over the evaluation window. */
    double meanRackUtil = 0.0;
    /** Integrated energy over the evaluation window. */
    power::Joules energyJoules{0.0};

    /**
     * Wall-clock accounting, summed over racks: seconds spent
     * generating traces vs. running the control loops.  Benchmarks
     * report replay throughput (racks / simSeconds) separately from
     * one-time trace synthesis.  Not simulation state: excluded
     * from the determinism comparisons.
     */
    double genSeconds = 0.0;
    double simSeconds = 0.0;
    /** Wall seconds spent in the serial hierarchy recompute phase
     *  (aggregate exchange + zone re-split); zero unless
     *  budgetPath == HierarchyZone.  Not simulation state. */
    double hierSeconds = 0.0;

    // Hierarchy metrics (zero unless budgetPath == HierarchyZone).
    /** Zone-level hierarchy recomputes performed. */
    std::uint64_t hierarchyRecomputes = 0;
    /** Aggregation/split work counters of the hierarchy tier. */
    core::BudgetHierarchy::Stats hierarchyStats;

    // Chaos metrics (all zero when fault injection is disabled).
    /** Injected-fault and degraded-path counters, all racks. */
    sim::FaultStats faults;
    /** Cap events that struck while a fault was plausibly in play
     *  (during a gOA outage, within an hour of an sOA crash, or
     *  with some sOA on a stale budget lease). */
    std::uint64_t capEventsFaultAttributed = 0;
    /** Control ticks some sOA spent on a stale (lease-expired)
     *  budget, summed over servers. */
    std::uint64_t staleLeaseTicks = 0;
    /** Completed fault recoveries (outage -> next successful
     *  recompute; crash -> next accepted budget assignment). */
    std::uint64_t recoveries = 0;
    /** Mean recovery time over those recoveries, in seconds. */
    double meanRecoveryS = 0.0;

    // Ingestion metrics (all zero when the ingress is disabled).
    /** Ingress counters merged over racks in rack order. */
    core::IngressStats ingress;
    /** Requests denied by the sOA flap-hysteresis window. */
    std::uint64_t flapDenied = 0;
};

/** Run one policy over one generated fleet. */
TraceSimResult runTraceSim(const TraceSimConfig &config);

/**
 * Run several independent configurations concurrently on one worker
 * pool (policy sweeps, tier sweeps, seed averaging).  Each run is
 * executed with its per-rack parallelism disabled (threads = 1), so
 * the pool is never oversubscribed; per-run results are identical
 * to calling runTraceSim on each config directly.
 *
 * @param threads Pool size; 0 means hardware concurrency.
 */
std::vector<TraceSimResult>
runTraceSimBatch(const std::vector<TraceSimConfig> &configs,
                 int threads = 0);

} // namespace cluster
} // namespace soc

#endif // SOC_CLUSTER_TRACE_SIM_HH
