/**
 * @file
 * Cluster-level microservice experiment (§V-A, Figs. 12-14).
 *
 * Reconstructs the paper's 36-server overclockable cluster: 14
 * servers host latency-critical SocialNet-like deployments (the
 * queueing models of workload/queueing_service.hh), 14 servers run
 * throughput-optimized MLTrain, and 8 servers (second rack) absorb
 * scale-out.  Load follows a valley-peak-valley profile; the
 * deployments' Global WI agents react to tail latency with
 * overclocking and/or scale-out depending on the environment:
 *
 *   Baseline   - fixed 1 VM at turbo
 *   ScaleOut   - horizontal autoscaling only
 *   ScaleUp    - overclocking only
 *   SmartOClock- overclock first, scale-out fallback + proactive
 *                scale-out on exhaustion signals
 *
 * The same harness runs the §V-A power-constrained (reduced rack
 * limit) and overclocking-constrained (reduced lifetime budget)
 * experiments.
 */

#ifndef SOC_CLUSTER_SERVICE_SIM_HH
#define SOC_CLUSTER_SERVICE_SIM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/hint_ingress.hh"
#include "core/policy.hh"
#include "power/power_model.hh"
#include "sim/fault_injector.hh"
#include "sim/hint_storm.hh"
#include "sim/time.hh"

namespace soc
{
namespace cluster
{

/** The four §V-A environments. */
enum class Environment {
    Baseline,
    ScaleOut,
    ScaleUp,
    SmartOClock,
};

std::string environmentName(Environment environment);

/** Configuration of one cluster run. */
struct ServiceSimConfig {
    Environment environment = Environment::SmartOClock;
    /** sOA policy (NaiveOClock for the constrained comparison). */
    core::PolicyKind soaPolicy = core::PolicyKind::SmartOClock;

    int socialNetServers = 14;
    int mlServers = 14;
    int spareServers = 8;

    sim::Tick duration = 20 * sim::kMinute;
    sim::Tick warmup = 2 * sim::kMinute;
    sim::Tick controlPeriod = 5 * sim::kSecond;
    sim::Tick pollPeriod = 15 * sim::kSecond;
    sim::Tick goaPeriod = 5 * sim::kMinute;
    /**
     * Telemetry window the sOAs' template aggregators retain; 0
     * (default) keeps all history — the seed behavior.  Must be a
     * positive multiple of the 5-minute slot when set.
     */
    sim::Tick templateWindow = 0;

    /** Offered load as a fraction of one instance's turbo capacity,
     *  per load class. */
    double lowFrac = 0.35;
    double medFrac = 0.60;
    double highFrac = 0.86;
    /** Extra multiplier on the mid-run peak. */
    double peakMultiplier = 1.0;

    /** Rack limit as a fraction of the servers' summed TDP. */
    double rackLimitFactor = 1.0;
    /** Lifetime budget fraction (scaled by budgetScale). */
    double overclockFraction = 0.10;
    double overclockBudgetScale = 1.0;
    bool proactiveScaleOut = true;

    int maxInstances = 4;
    int mlCoresPerServer = 48;
    /** Background utilization every VM instance pays (OS, runtime,
     *  sidecars) on top of request work.  Makes each scale-out
     *  instance cost real energy, as in the paper's cluster. */
    double vmOverheadUtil = 0.20;
    std::uint64_t seed = 7;
    power::PowerModelParams hardware;
    /**
     * Worker threads used when this configuration is run through
     * runServiceSimBatch.  Unlike the trace simulator's racks, one
     * cluster run is a single coupled discrete-event simulation
     * (scale-out moves VMs onto the spare rack mid-run), so the run
     * itself stays serial; environment/seed sweeps parallelize
     * across runs instead.  0 means hardware concurrency.
     */
    int threads = 0;
    /**
     * Fault injection (chaos harness).  Disabled by default; when
     * enabled each rack draws a deterministic FaultPlan from the
     * run seed and budget assignments carry a lease of 2 x
     * goaPeriod.
     */
    sim::FaultConfig faults;
    /**
     * Hint ingestion boundary (DESIGN.md §12).  Disabled by default
     * (the metric pump calls GlobalWiAgent::onMetrics directly, the
     * seed behavior).  When enabled, each deployment's poll-window
     * metrics cross the cluster's HintIngress as wire::MetricsWindow
     * frames, and schedule/exhaustion hints become first-class wire
     * messages too.
     */
    core::HintIngressConfig ingress;
    /**
     * Adversarial hint-storm catalog (requires ingress.enabled);
     * storms target deployments (server index = deployment index).
     */
    sim::HintStormConfig storm;

    /**
     * Reject nonsensical configurations up front with a clear
     * message (std::invalid_argument): at least one latency-critical
     * server, non-negative server counts, positive periods and rack
     * limit factor, warmup < duration, and fault knobs in range.
     */
    void validate() const;
};

/** Aggregated metrics for one load class. */
struct ClassResult {
    double p99Ms = 0.0;
    double meanMs = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t violations = 0;
    double meanInstances = 0.0;
    double energyPerServerJ = 0.0;
    /** Fraction of poll windows whose P99 exceeded the SLO. */
    double missedSloTimeFrac = 0.0;
};

/** Full result of one cluster run. */
struct ServiceSimResult {
    std::array<ClassResult, 3> byClass; // low / med / high
    power::Joules totalEnergyJ{0.0};
    /** Energy of the servers hosting latency-critical services. */
    power::Joules socialEnergyJ{0.0};
    /** MLTrain mean throughput, normalized to turbo baseline. */
    double mlThroughputNorm = 0.0;
    std::uint64_t capEvents = 0;
    double meanInstancesAll = 0.0;
    std::uint64_t scaleOuts = 0;
    std::uint64_t proactiveScaleOuts = 0;
    std::uint64_t overclockStarts = 0;
    std::uint64_t denials = 0;
    /** Fraction of eval time with any service above its SLO. */
    double missedSloTimeFrac = 0.0;
    /** Injected-fault and degraded-path counters (zero when fault
     *  injection is disabled). */
    sim::FaultStats faults;
    /** Ingress counters (zero when the ingress is disabled). */
    core::IngressStats ingress;
    /** Metric windows the WI agents rejected fail-closed
     *  (NaN/negative fields), summed over deployments. */
    std::uint64_t rejectedMetrics = 0;
};

/** Run one environment over the 36-server cluster. */
ServiceSimResult runServiceSim(const ServiceSimConfig &config);

/**
 * Run several independent cluster configurations concurrently on
 * one worker pool (environment comparisons, seed averaging).
 * Per-run results are identical to calling runServiceSim on each
 * config directly: every run owns its simulator, racks and RNG.
 *
 * @param threads Pool size; 0 uses the largest `threads` knob among
 *                @p configs (and hardware concurrency if all are 0).
 */
std::vector<ServiceSimResult>
runServiceSimBatch(const std::vector<ServiceSimConfig> &configs,
                   int threads = 0);

} // namespace cluster
} // namespace soc

#endif // SOC_CLUSTER_SERVICE_SIM_HH
