#include "cluster/service_sim.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/goa.hh"
#include "core/soa.hh"
#include "core/wi.hh"
#include "power/rack.hh"
#include "power/rack_manager.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"
#include "workload/archetype.hh"
#include "workload/mltrain.hh"
#include "workload/queueing_service.hh"

namespace soc
{
namespace cluster
{

std::string
environmentName(Environment environment)
{
    switch (environment) {
      case Environment::Baseline: return "Baseline";
      case Environment::ScaleOut: return "ScaleOut";
      case Environment::ScaleUp: return "ScaleUp";
      case Environment::SmartOClock: return "SmartOClock";
    }
    return "unknown";
}

void
ServiceSimConfig::validate() const
{
    auto fail = [](const std::string &what) {
        throw std::invalid_argument("ServiceSimConfig: " + what);
    };
    if (socialNetServers < 1) {
        fail("socialNetServers must be >= 1 (got " +
             std::to_string(socialNetServers) + ")");
    }
    if (mlServers < 0)
        fail("mlServers must be non-negative");
    if (spareServers < 0)
        fail("spareServers must be non-negative");
    if (warmup < 0)
        fail("warmup must be non-negative");
    if (duration <= warmup) {
        fail("duration must exceed warmup (nothing to evaluate)");
    }
    if (controlPeriod <= 0)
        fail("controlPeriod must be > 0");
    if (pollPeriod <= 0)
        fail("pollPeriod must be > 0");
    if (goaPeriod <= 0)
        fail("goaPeriod must be > 0");
    if (templateWindow < 0 ||
        (templateWindow > 0 && templateWindow % sim::kSlot != 0)) {
        fail("templateWindow must be 0 or a positive multiple of "
             "the telemetry slot");
    }
    if (!(rackLimitFactor > 0.0)) {
        fail("rackLimitFactor must be > 0 (got " +
             std::to_string(rackLimitFactor) + ")");
    }
    if (maxInstances < 1)
        fail("maxInstances must be >= 1");
    faults.validate();
    ingress.validate();
    storm.validate();
    if (storm.enabled && !ingress.enabled) {
        fail("storm requires the ingress (there is no hint channel "
             "to attack otherwise)");
    }
}

namespace
{

/** One server with its agent and bookkeeping. */
struct Node {
    power::Server *server = nullptr;
    core::ServerOverclockingAgent *soa = nullptr;
    int rackIdx = 0;
    enum class Kind { SocialHome, MlTrain, Spare } kind;
    power::Joules energyJ{0.0};
};

/** One VM instance binding across the three layers. */
struct VmBinding {
    int nodeIdx = -1;
    power::GroupId groupId = -1;
    workload::QueueingService::InstanceId instanceId = -1;
};

/** One latency-critical deployment. */
struct Deployment {
    int index = 0;
    int loadClass = 0; // 0 low, 1 med, 2 high
    /** Unloaded P99 already beyond the SLO (UrlShort): no amount of
     *  capacity meets the SLO, so the missed-SLO-time metric skips
     *  this deployment in every environment. */
    bool unfixable = false;
    int homeNode = 0;
    double baseRate = 0.0;
    std::unique_ptr<workload::QueueingService> service;
    std::unique_ptr<core::GlobalWiAgent> wi;
    std::vector<VmBinding> vms;

    // Evaluation accumulators.
    sim::Percentiles evalLatency;
    std::uint64_t evalViolations = 0;
    std::uint64_t evalCompleted = 0;
    std::uint64_t evalWindows = 0;
    std::uint64_t evalMissedWindows = 0;
    double instanceIntegral = 0.0; // instance-count x seconds
};

core::WiPolicyConfig
wiConfigFor(const ServiceSimConfig &config, double slo_ms,
            double baseline_p99_ms)
{
    core::WiPolicyConfig wi;
    wi.sloMs = slo_ms;
    wi.baselineP99Ms = baseline_p99_ms;
    switch (config.environment) {
      case Environment::Baseline:
        wi.enableOverclock = false;
        wi.enableScaleOut = false;
        break;
      case Environment::ScaleOut:
        wi.enableOverclock = false;
        wi.enableScaleOut = true;
        break;
      case Environment::ScaleUp:
        wi.enableOverclock = true;
        wi.enableScaleOut = false;
        break;
      case Environment::SmartOClock:
        wi.enableOverclock = true;
        wi.enableScaleOut = true;
        break;
    }
    // Workload intelligence (§III-Q1, §IV-A): SmartOClock infers
    // thresholds from profiling.  A service whose unloaded P99
    // already exceeds its SLO (UrlShort) cannot be brought under it
    // by running faster — its tail is distribution-driven — so
    // spending the limited overclocking budget on it is pure waste;
    // workload-agnostic vertical scaling keeps trying anyway.
    // Scale-out stays available: it still absorbs queueing delay.
    if (config.environment == Environment::SmartOClock &&
        baseline_p99_ms >= slo_ms) {
        wi.enableOverclock = false;
    }
    wi.maxInstances = config.maxInstances;
    wi.proactiveScaleOut = config.proactiveScaleOut;
    wi.scaleCooldown = 45 * sim::kSecond;
    wi.overclockGrace = 30 * sim::kSecond;
    wi.metricsChunk = 10 * sim::kMinute;
    return wi;
}

/** Offered-load multiplier: valley - peak - valley. */
double
loadPhase(sim::Tick t, sim::Tick duration)
{
    const double frac = static_cast<double>(t) /
        static_cast<double>(duration);
    if (frac < 0.25 || frac >= 0.80)
        return 0.50;
    return 1.0;
}

} // namespace

ServiceSimResult
runServiceSim(const ServiceSimConfig &config)
{
    config.validate();
    sim::Simulator simulator;
    sim::Rng rng(config.seed);
    const power::PowerModel model(config.hardware);

    // --- Racks -------------------------------------------------------
    const int rack1_servers =
        config.socialNetServers + config.mlServers;
    const power::Watts limit1 = rack1_servers *
        config.hardware.tdpWatts * config.rackLimitFactor;
    const power::Watts limit2 = std::max(1, config.spareServers) *
        config.hardware.tdpWatts * config.rackLimitFactor;

    power::Rack rack1(0, limit1);
    power::Rack rack2(1, limit2);
    power::RackManager manager1(rack1);
    power::RackManager manager2(rack2);

    core::GoaConfig goa_cfg;
    std::array<sim::FaultPlan, 2> plans;
    if (config.faults.enabled) {
        // Leases sized to tolerate one missed recompute before the
        // sOAs start decaying toward the safe floor.
        goa_cfg.leaseTtl = 2 * config.goaPeriod;
        plans[0] = sim::FaultPlan::generate(
            config.faults, config.seed, 0, rack1_servers,
            config.duration);
        plans[1] = sim::FaultPlan::generate(
            config.faults, config.seed, 1,
            std::max(1, config.spareServers), config.duration);
    }
    core::GlobalOverclockingAgent goa1(rack1, model, goa_cfg);
    core::GlobalOverclockingAgent goa2(rack2, model, goa_cfg);

    core::SoaConfig soa_cfg =
        core::SoaConfig::forPolicy(config.soaPolicy);
    soa_cfg.controlPeriod = config.controlPeriod;
    soa_cfg.overclockFraction =
        config.overclockFraction * config.overclockBudgetScale;
    // Short runs need a short epoch so the budget is meaningfully
    // finite: one epoch spans the whole experiment.
    soa_cfg.budgetEpoch = std::max<sim::Tick>(config.duration,
                                              10 * sim::kMinute);
    soa_cfg.templateWindow = config.templateWindow;

    std::vector<Node> nodes;
    std::vector<std::unique_ptr<core::ServerOverclockingAgent>> soas;

    const bool faulty_sensor = config.faults.enabled &&
        (config.faults.sensorNoiseStd > 0.0 ||
         config.faults.sensorBias != 0.0);

    auto add_node = [&](power::Rack &rack,
                        power::RackManager &manager,
                        core::GlobalOverclockingAgent &goa,
                        int rack_idx, Node::Kind kind) {
        power::Server &server = rack.addServer(&model);
        soas.push_back(
            std::make_unique<core::ServerOverclockingAgent>(
                server, soa_cfg, &rack));
        if (faulty_sensor) {
            const sim::FaultPlan *plan = &plans[rack_idx];
            const int sidx =
                static_cast<int>(rack.serverCount()) - 1;
            soas.back()->setPowerSensor(
                [plan, sidx](power::Watts watts, sim::Tick now) {
                    return watts * plan->sensorFactor(sidx, now);
                });
        }
        manager.addListener(soas.back().get());
        goa.addAgent(soas.back().get());
        Node node;
        node.server = &server;
        node.soa = soas.back().get();
        node.rackIdx = rack_idx;
        node.kind = kind;
        nodes.push_back(node);
    };

    for (int i = 0; i < config.socialNetServers; ++i)
        add_node(rack1, manager1, goa1, 0, Node::Kind::SocialHome);
    for (int i = 0; i < config.mlServers; ++i)
        add_node(rack1, manager1, goa1, 0, Node::Kind::MlTrain);
    for (int i = 0; i < config.spareServers; ++i)
        add_node(rack2, manager2, goa2, 1, Node::Kind::Spare);

    goa1.assignEvenSplit();
    if (config.spareServers > 0)
        goa2.assignEvenSplit();

    // --- MLTrain workloads -------------------------------------------
    struct MlNode {
        int nodeIdx;
        power::GroupId groupId;
        workload::MlTrainJob job;
        workload::Archetype archetype = workload::mlTraining();
        sim::Rng noise;
    };
    std::vector<MlNode> ml_nodes;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (nodes[n].kind != Node::Kind::MlTrain)
            continue;
        MlNode ml;
        ml.nodeIdx = static_cast<int>(n);
        ml.groupId = nodes[n].server->addGroup(
            config.mlCoresPerServer, 0.85, power::kTurboMHz,
            /*priority=*/2);
        ml.noise = rng.split();
        ml_nodes.push_back(std::move(ml));
    }

    // --- Latency-critical deployments --------------------------------
    const auto catalog = workload::socialNetCatalog();
    std::vector<std::unique_ptr<Deployment>> deployments;
    // groupId -> deployment, per node (for exhaustion routing).
    // Lookup only — indexed by the groupId carried in each signal,
    // never iterated.  soclint:allow(DET-003)
    std::vector<std::unordered_map<int, Deployment *>> routing(
        nodes.size());

    auto place_vm = [&](Deployment &dep) -> int {
        // Prefer spare servers, then any server with room; ties by
        // most free cores.
        int best = -1;
        int best_free = -1;
        const int workers = dep.service->params().workersPerVm;
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            const int free = nodes[n].server->freeCores();
            if (free < workers)
                continue;
            const bool spare = nodes[n].kind == Node::Kind::Spare;
            const int score = free + (spare ? 1000 : 0);
            if (score > best_free) {
                best_free = score;
                best = static_cast<int>(n);
            }
        }
        return best;
    };

    auto bind_vm = [&](Deployment &dep, int node_idx) {
        Node &node = nodes[node_idx];
        const int workers = dep.service->params().workersPerVm;
        VmBinding binding;
        binding.nodeIdx = node_idx;
        binding.groupId = node.server->addGroup(
            workers, 0.0, power::kTurboMHz, /*priority=*/1);
        binding.instanceId = dep.service->addInstance();
        dep.vms.push_back(binding);
        routing[node_idx][binding.groupId] = &dep;
        dep.wi->addVm(std::make_unique<core::LocalWiAgent>(
            static_cast<int>(dep.vms.size()) - 1, node.soa,
            binding.groupId, workers));
    };

    for (int i = 0; i < config.socialNetServers; ++i) {
        auto dep = std::make_unique<Deployment>();
        dep->index = i;
        dep->loadClass = (i * 3) / config.socialNetServers;
        dep->homeNode = i;
        const auto &params = catalog[i % catalog.size()];
        dep->service = std::make_unique<workload::QueueingService>(
            simulator, params, config.seed * 977 + i);
        const double frac = dep->loadClass == 0
            ? config.lowFrac
            : (dep->loadClass == 1 ? config.medFrac
                                   : config.highFrac);
        dep->baseRate = frac *
            dep->service->instanceCapacity(power::kTurboMHz);
        dep->unfixable = workload::unloadedP99Ms(params) >=
            dep->service->sloMs();
        dep->wi = std::make_unique<core::GlobalWiAgent>(
            params.name,
            wiConfigFor(config, dep->service->sloMs(),
                        workload::unloadedP99Ms(params)));
        deployments.push_back(std::move(dep));
    }

    // Scale actuators.
    for (auto &dep_ptr : deployments) {
        Deployment &dep = *dep_ptr;
        bind_vm(dep, dep.homeNode);
        dep.wi->setScaleOutHandler([&](int n) {
            for (int k = 0; k < n; ++k) {
                const int node_idx = place_vm(dep);
                if (node_idx < 0)
                    return;
                bind_vm(dep, node_idx);
            }
        });
        dep.wi->setScaleInHandler([&](int n) {
            for (int k = 0; k < n && dep.vms.size() > 1; ++k) {
                VmBinding binding = dep.vms.back();
                dep.vms.pop_back();
                auto vm = dep.wi->removeLastVm(simulator.now());
                dep.service->retireInstance();
                routing[binding.nodeIdx].erase(binding.groupId);
                nodes[binding.nodeIdx].soa->stopOverclock(
                    binding.groupId, simulator.now());
                nodes[binding.nodeIdx].server->removeGroup(
                    binding.groupId);
            }
        });
    }

    // Exhaustion signal routing.
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        auto *soa = nodes[n].soa;
        auto &table = routing[n];
        soa->setExhaustionCallback(
            [&table, &simulator](const core::ExhaustionSignal &sig) {
            auto it = table.find(sig.groupId);
            if (it != table.end())
                it->second->wi->onExhaustion(simulator.now(), sig);
        });
    }

    // --- Periodic control tasks --------------------------------------
    ServiceSimResult result;
    const double dt_s =
        static_cast<double>(config.controlPeriod) / sim::kSecond;
    std::uint64_t eval_windows = 0;
    std::uint64_t eval_windows_missed = 0;

    // Fault bookkeeping: merged crash schedule over both racks
    // (node index order) and the in-flight budget pushes per gOA.
    std::vector<std::pair<sim::Tick, int>> crash_schedule;
    for (const auto &event : plans[0].crashes()) {
        if (event.server < rack1_servers)
            crash_schedule.emplace_back(event.at, event.server);
    }
    for (const auto &event : plans[1].crashes()) {
        if (event.server < config.spareServers) {
            crash_schedule.emplace_back(
                event.at, rack1_servers + event.server);
        }
    }
    std::sort(crash_schedule.begin(), crash_schedule.end());
    std::size_t next_crash = 0;
    std::array<std::vector<core::PendingAssignment>, 2> in_flight;
    std::array<std::size_t, 2> next_delivery{};

    simulator.every(config.controlPeriod, [&](sim::Tick now) {
        const bool in_eval = now >= config.warmup;

        // Scheduled sOA crash-restarts due by now.
        while (next_crash < crash_schedule.size() &&
               crash_schedule[next_crash].first <= now) {
            const int node_idx = crash_schedule[next_crash].second;
            nodes[node_idx].soa->crashRestart(now);
            ++result.faults.soaCrashes;
            ++next_crash;
        }

        // Deliver budget pushes whose flight time is up.
        for (int r = 0; r < 2; ++r) {
            auto &queue = in_flight[r];
            auto &cursor = next_delivery[r];
            auto &goa = r == 0 ? goa1 : goa2;
            while (cursor < queue.size() &&
                   queue[cursor].deliverAt <= now) {
                goa.deliver(queue[cursor], now);
                ++cursor;
            }
        }

        // Offered load follows the phase profile.
        const double phase =
            loadPhase(now, config.duration) * config.peakMultiplier;
        for (auto &dep : deployments) {
            const double rate = dep->baseRate * phase;
            if (std::abs(rate - dep->service->arrivalRate()) >
                1e-9 * std::max(1.0, rate)) {
                dep->service->setArrivalRate(rate);
            }
        }

        // Sync layer state: utilization up, frequency down.
        for (auto &dep : deployments) {
            for (const auto &binding : dep->vms) {
                Node &node = nodes[binding.nodeIdx];
                const double busy =
                    dep->service->instantUtilization(
                        binding.instanceId);
                node.server->setUtil(
                    binding.groupId,
                    config.vmOverheadUtil +
                        (1.0 - config.vmOverheadUtil) * busy);
                const auto *group =
                    node.server->group(binding.groupId);
                if (group != nullptr) {
                    dep->service->setFrequency(
                        binding.instanceId, group->effectiveMHz());
                }
            }
            if (in_eval) {
                dep->instanceIntegral +=
                    static_cast<double>(
                        dep->service->instanceCount()) * dt_s;
            }
        }

        // MLTrain progress + utilization noise.
        for (auto &ml : ml_nodes) {
            Node &node = nodes[ml.nodeIdx];
            auto *group = node.server->group(ml.groupId);
            if (group == nullptr)
                continue;
            const double util = std::clamp(
                ml.archetype.utilAt(now) +
                    ml.noise.normal(0.0, 0.01),
                0.0, 1.0);
            node.server->setUtil(ml.groupId, util);
            if (in_eval)
                ml.job.advance(config.controlPeriod,
                               group->effectiveMHz());
        }

        // Agents and safety.
        for (auto &soa : soas)
            soa->tick(now);
        manager1.tick(now);
        if (config.spareServers > 0)
            manager2.tick(now);

        // Energy accounting.
        if (in_eval) {
            for (auto &node : nodes)
                node.energyJ += power::energyOver(
                    node.server->powerWatts(), dt_s);
        }
    });

    // Hint channel (DESIGN.md §12): when enabled, the metric pump
    // serializes each deployment's poll window as a wire frame
    // through one cluster-level bounded ingress instead of calling
    // the WI agents directly; the deployment index doubles as the
    // wire "server" field.  Storm frames pour into the same queue.
    std::unique_ptr<core::HintIngress> hint_ingress;
    sim::HintStormGenerator hint_storm;
    std::vector<std::uint64_t> hint_seq(deployments.size(), 0);
    if (config.ingress.enabled) {
        hint_ingress =
            std::make_unique<core::HintIngress>(config.ingress);
        if (config.storm.enabled) {
            hint_storm = sim::HintStormGenerator(
                config.storm, config.seed, /*rack=*/0,
                static_cast<int>(deployments.size()),
                config.maxInstances);
        }
    }

    simulator.every(config.pollPeriod, [&](sim::Tick now) {
        const bool in_eval = now >= config.warmup;
        for (auto &dep : deployments) {
            auto window = dep->service->drainWindow();
            core::VmMetrics metrics;
            metrics.p99LatencyMs = window.latencyMs.p99();
            metrics.meanLatencyMs = window.latencyMs.mean();
            metrics.utilization = window.utilization;
            metrics.completed = window.completed;
            if (hint_ingress) {
                const auto d =
                    static_cast<std::size_t>(dep->index);
                if (hint_storm.enabled()) {
                    hint_storm.generate(
                        dep->index, now,
                        [&](const core::wire::Frame &frame) {
                            hint_ingress->offer(frame, now);
                        });
                }
                core::wire::HintHeader hdr;
                hdr.server = dep->index;
                hdr.vmId = dep->index;
                hdr.seq = hint_seq[d]++;
                hdr.issuedAt = now;
                hint_ingress->offer(
                    core::wire::encodeMetricsWindow(hdr, metrics),
                    now);
            } else {
                for (std::size_t v = 0; v < dep->wi->vmCount(); ++v)
                    dep->wi->vm(v).lastMetrics = metrics;
                dep->wi->onMetrics(now, metrics);
                dep->wi->tick(now);
            }

            if (in_eval && window.completed > 0) {
                dep->evalLatency.merge(window.latencyMs);
                dep->evalViolations +=
                    window.violations + window.dropped;
                dep->evalCompleted += window.completed;
                if (!dep->unfixable) {
                    ++dep->evalWindows;
                    ++eval_windows;
                    if (metrics.p99LatencyMs >
                        dep->service->sloMs()) {
                        ++dep->evalMissedWindows;
                        ++eval_windows_missed;
                    }
                }
            }
        }

        if (hint_ingress) {
            // One batched drain dispatches the surviving hints into
            // the WI agents; the sink bounds-checks the addressed
            // deployment (forged frames may name anything).
            hint_ingress->drain(
                now, [&](const core::wire::ParsedHint &hint) {
                    if (hint.server < 0 ||
                        hint.server >=
                            static_cast<int>(deployments.size()))
                        return false;
                    Deployment &dep =
                        *deployments[static_cast<std::size_t>(
                            hint.server)];
                    switch (hint.kind) {
                    case core::wire::HintKind::MetricsWindow:
                        for (std::size_t v = 0;
                             v < dep.wi->vmCount(); ++v)
                            dep.wi->vm(v).lastMetrics = hint.metrics;
                        dep.wi->onMetrics(now, hint.metrics);
                        return true;
                    case core::wire::HintKind::ScheduleDeclaration:
                        // A declared high-traffic window replaces
                        // the deployment's schedule.
                        dep.wi->mutableConfig().windows = {
                            hint.window};
                        return true;
                    case core::wire::HintKind::ExhaustionSignal:
                        dep.wi->onExhaustion(now, hint.exhaustion);
                        return true;
                    default:
                        // Start/stop hints have no consumer here:
                        // the WI agents drive the sOAs directly.
                        return false;
                    }
                });
            for (auto &dep : deployments)
                dep->wi->tick(now);
        }
    });

    auto run_goa = [&](core::GlobalOverclockingAgent &goa,
                       const sim::FaultPlan &plan, int rack_idx,
                       sim::Tick now) {
        if (!plan.enabled()) {
            goa.recompute(now);
            return;
        }
        if (plan.goaDown(now)) {
            // Outage: no budget update this period; the sOAs keep
            // enforcing their last assignments until the lease
            // expires, then decay toward the safe floor (§III-Q5).
            ++result.faults.recomputesSkipped;
            return;
        }
        core::RecomputeFaults rf;
        rf.telemetryAttempts = config.faults.telemetryAttempts;
        rf.telemetryLost = [&plan, now](int server, int attempt) {
            return plan.telemetryLost(server, now, attempt);
        };
        rf.budgetLost = [&plan, now](int server) {
            return plan.budgetLost(server, now);
        };
        rf.budgetDelay = [&plan, now](int server) {
            return plan.budgetDelay(server, now);
        };
        rf.budgetCorrupt = [&plan, now](int server) {
            return plan.budgetCorrupted(server, now)
                ? plan.corruptionKind(server, now)
                : -1;
        };
        auto batch = goa.recompute(now, rf);
        auto &queue = in_flight[rack_idx];
        for (auto &pending : batch)
            queue.push_back(std::move(pending));
        std::stable_sort(
            queue.begin() + static_cast<std::ptrdiff_t>(
                                next_delivery[rack_idx]),
            queue.end(),
            [](const core::PendingAssignment &a,
               const core::PendingAssignment &b) {
                return a.deliverAt < b.deliverAt;
            });
    };

    simulator.every(config.goaPeriod, [&](sim::Tick now) {
        run_goa(goa1, plans[0], 0, now);
        if (config.spareServers > 0)
            run_goa(goa2, plans[1], 1, now);
    });

    simulator.runUntil(config.duration);

    // --- Aggregate results -------------------------------------------
    const double eval_s = static_cast<double>(
        config.duration - config.warmup) / sim::kSecond;

    std::array<sim::Percentiles, 3> class_latency;
    std::array<double, 3> class_instances{};
    std::array<power::Joules, 3> class_energy{};
    std::array<int, 3> class_count{};
    std::array<std::uint64_t, 3> class_windows{};
    std::array<std::uint64_t, 3> class_missed{};

    double instances_all = 0.0;
    for (auto &dep : deployments) {
        const int c = dep->loadClass;
        class_latency[c].merge(dep->evalLatency);
        result.byClass[c].completed += dep->evalCompleted;
        result.byClass[c].violations += dep->evalViolations;
        const double mean_instances =
            dep->instanceIntegral / eval_s;
        class_instances[c] += mean_instances;
        instances_all += mean_instances;
        class_energy[c] += nodes[dep->homeNode].energyJ;
        class_windows[c] += dep->evalWindows;
        class_missed[c] += dep->evalMissedWindows;
        ++class_count[c];

        result.scaleOuts += dep->wi->stats().scaleOuts;
        result.proactiveScaleOuts +=
            dep->wi->stats().proactiveScaleOuts;
        result.overclockStarts += dep->wi->stats().overclockStarts;
        result.denials += dep->wi->stats().denials;
        result.rejectedMetrics += dep->wi->stats().rejectedMetrics;
    }
    if (hint_ingress)
        result.ingress.merge(hint_ingress->stats());

    for (int c = 0; c < 3; ++c) {
        auto &out = result.byClass[c];
        out.p99Ms = class_latency[c].p99();
        out.meanMs = class_latency[c].mean();
        const int n = std::max(1, class_count[c]);
        out.meanInstances = class_instances[c] / n;
        out.energyPerServerJ =
            (class_energy[c] / static_cast<double>(n)).count();
        out.missedSloTimeFrac = class_windows[c] > 0
            ? static_cast<double>(class_missed[c]) /
                static_cast<double>(class_windows[c])
            : 0.0;
    }

    for (auto &node : nodes) {
        result.totalEnergyJ += node.energyJ;
        if (node.kind == Node::Kind::SocialHome ||
            node.kind == Node::Kind::Spare) {
            result.socialEnergyJ += node.energyJ;
        }
    }

    double ml_throughput = 0.0;
    for (auto &ml : ml_nodes)
        ml_throughput += ml.job.meanThroughput();
    result.mlThroughputNorm = ml_nodes.empty()
        ? 0.0
        : ml_throughput /
            (static_cast<double>(ml_nodes.size()) *
             workload::MlTrainJob().throughput(power::kTurboMHz));

    result.capEvents = manager1.stats().capEvents +
        manager2.stats().capEvents;
    if (config.faults.enabled) {
        for (const auto *goa : {&goa1, &goa2}) {
            const core::GoaStats &gs = goa->stats();
            result.faults.telemetryRetries += gs.telemetryRetries;
            result.faults.telemetryDrops += gs.staleProfiles;
            result.faults.budgetDrops += gs.assignmentsDropped;
            result.faults.budgetDelays += gs.assignmentsDelayed;
            result.faults.budgetRejects += gs.assignmentsRejected;
        }
        for (const auto &plan : plans) {
            for (const auto &outage : plan.outages())
                if (outage.start < config.duration)
                    ++result.faults.goaOutages;
        }
    }
    result.meanInstancesAll = instances_all /
        std::max<std::size_t>(1, deployments.size());
    result.missedSloTimeFrac = eval_windows > 0
        ? static_cast<double>(eval_windows_missed) /
            static_cast<double>(eval_windows)
        : 0.0;
    return result;
}

std::vector<ServiceSimResult>
runServiceSimBatch(const std::vector<ServiceSimConfig> &configs,
                   int threads)
{
    int requested = threads;
    if (requested <= 0) {
        for (const auto &cfg : configs)
            requested = std::max(requested, cfg.threads);
    }
    std::vector<ServiceSimResult> results(configs.size());
    sim::ThreadPool pool(std::min<int>(
        sim::ThreadPool::resolveThreads(requested),
        static_cast<int>(std::max<std::size_t>(1, configs.size()))));
    // Grain 1 chunked dispatch: runs are heavyweight, so the atomic
    // cursor balances them individually; per-config result slots
    // keep the output independent of scheduling.
    pool.parallelForChunked(
        configs.size(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                results[i] = runServiceSim(configs[i]);
        });
    return results;
}

} // namespace cluster
} // namespace soc
