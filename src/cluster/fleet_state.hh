/**
 * @file
 * Struct-of-arrays replay state for one rack of the trace simulator.
 *
 * The per-object hot loop walked every VM of every server on every
 * control step: a TimeSeries::atTime division, a linear group lookup
 * and a full power-model evaluation per VM, with the per-server
 * state scattered across Server/CoreGroup objects.  FleetState
 * flattens the replay inputs into parallel arrays indexed by a
 * per-server [offset, offset+count) range:
 *
 *  - slot-major sample windows (all VMs' utilization and turbo-watts
 *    samples for one slot contiguous), filled window by window from
 *    the streaming trace generator;
 *  - per-server candidate bitmasks (VMs that ever request
 *    overclocking);
 *  - contiguous rows handed to Server::setUtilsAndTurboWatts, the
 *    batch update that reuses the generator's precomputed turbo
 *    watts instead of re-evaluating the power model.
 *
 * Utilization is slot-constant (5-minute telemetry), so applySlot()
 * runs once per closed slot, not once per control step, and also
 * publishes each server's *want* bitmask (candidate VMs whose
 * utilization crosses the overclock threshold).  The step loop then
 * touches only the set bits of want|active instead of every VM.
 *
 * Windows replaced the former whole-horizon transpose: the replay
 * opens a window (beginWindow), streams samples into the exposed
 * slot-major buffers, finalizes it (per-slot want masks), and
 * replays it to the end before opening the next one.  The buffers
 * are recycled across windows, so a rack's replay footprint is
 * O(VMs x window slots) regardless of the simulated horizon — what
 * lets the 7.1k-rack, 6-week study fit in memory (DESIGN.md §13).
 */

#ifndef SOC_CLUSTER_FLEET_STATE_HH
#define SOC_CLUSTER_FLEET_STATE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "power/rack.hh"

namespace soc
{
namespace cluster
{

/** SoA replay state for one rack; see the file comment. */
class FleetState
{
  public:
    /** VM bitmasks are 64-bit; servers host far fewer VMs. */
    static constexpr std::size_t kMaxVmsPerServer = 64;

    /**
     * @param ocUtilThreshold Utilization at/above which a candidate
     *        VM wants to overclock (TraceSimConfig::ocUtilThreshold).
     */
    explicit FleetState(double ocUtilThreshold);

    /**
     * Register one server's VM layout: @p vms VM columns whose
     * samples will arrive through the window buffers, and
     * @p candidate flagging which VMs ever request overclocking.
     * Servers must be added in rack order, before setHorizon().
     */
    void addServer(std::size_t vms,
                   const std::vector<bool> &candidate);

    std::size_t servers() const { return counts_.size(); }

    /** Flat VM count across all registered servers (the slot-major
     *  row width of the window buffers). */
    std::size_t totalVms() const { return offsets_.empty()
            ? 0
            : offsets_.back() + counts_.back(); }

    /** First flat VM index of @p server (its window column base). */
    std::size_t serverOffset(std::size_t server) const
    {
        return offsets_[server];
    }

    /** Fix the replay horizon in slots; must precede beginWindow. */
    void setHorizon(std::size_t slots);

    /** Number of telemetry slots the replay horizon covers. */
    std::size_t slots() const { return slots_; }

    /**
     * Open the window starting at @p firstSlot, covering up to
     * @p maxSlots slots (clamped to the horizon), and return the
     * number of slots actually covered.  Windows must be opened in
     * order, each starting where the previous ended (asserted); the
     * caller then fills utilWindow()/wattsWindow() — slot i of the
     * window at row i * totalVms() — and calls finalizeWindow().
     */
    std::size_t beginWindow(std::size_t firstSlot,
                            std::size_t maxSlots);

    /** Slot-major utilization buffer of the open window, in uint16
     *  fixed point (sim::quantizeUtil). */
    std::uint16_t *utilWindow() { return utilBySlot_.data(); }
    /** Slot-major turbo-watts buffer of the open window (float
     *  hints, computed from the dequantized utilization). */
    float *wattsWindow() { return wattsBySlot_.data(); }

    /** Compute the open window's per-slot want masks; applySlot may
     *  then replay any slot of the window. */
    void finalizeWindow();

    /** First slot of the current window. */
    std::size_t windowBegin() const { return windowBegin_; }
    /** One past the last slot of the current window (0 before the
     *  first beginWindow). */
    std::size_t windowEnd() const
    {
        return windowBegin_ + windowSlots_;
    }

    /** Forget all window state: the next beginWindow must restart
     *  at slot 0 (a fresh replay pass over the same layout). */
    void resetWindows();

    /**
     * Push slot @p slot's utilizations (with turbo-power hints) into
     * every server of @p rack and rebuild the want masks.  Servers
     * are updated in rack order.  @p slot must lie inside the
     * current finalized window: the windows are streamed to cover
     * the full sim horizon, so an out-of-window slot is a caller bug
     * (asserted), mirroring the TimeSeries out-of-range policy.
     */
    void applySlot(power::Rack &rack, std::size_t slot);

    /** Candidate VMs of @p server above threshold at the last
     *  applied slot (bit v == VM v == core-group id v). */
    std::uint64_t wantMask(std::size_t server) const
    {
        return want_[server];
    }

    /** Utilization of VM @p v on @p server at the last applied
     *  slot (valid after the first applySlot); the dequantized
     *  value every other reader of the column sees. */
    double util(std::size_t server, std::size_t v) const;

  private:
    double threshold_;
    /** Smallest quantized utilization whose dequantized value
     *  reaches threshold_ (65536 when threshold_ > 1, so no sample
     *  ever wants): finalizeWindow's integer want compare is exactly
     *  the dequantize-then-compare it replaces. */
    std::uint32_t qThreshold_;
    std::size_t slots_ = 0;
    std::size_t lastSlot_ = 0;

    /** Per-server [offset, offset+count) range into the VM columns. */
    std::vector<std::size_t> offsets_;
    std::vector<std::size_t> counts_;
    /** Candidate VMs per server, as a bitmask. */
    std::vector<std::uint64_t> candidate_;
    /** Want mask per server at the last applied slot. */
    std::vector<std::uint64_t> want_;

    std::size_t windowBegin_ = 0;
    std::size_t windowSlots_ = 0;
    bool windowFinal_ = false;
    /** Slot-major sample windows: row `slot - windowBegin_` holds
     *  every VM's sample for that slot, in flat VM-index order.
     *  Compact columns — uint16 fixed-point utilization and float
     *  turbo-watts (sim/quant.hh) — so a resident fleet's windows
     *  cost 6 bytes per sample instead of 16.  Capacity is recycled
     *  across windows. */
    std::vector<std::uint16_t> utilBySlot_;
    std::vector<float> wattsBySlot_;
    /** Per-slot want masks of the window, servers-major per row. */
    std::vector<std::uint64_t> wantBySlot_;
};

} // namespace cluster
} // namespace soc

#endif // SOC_CLUSTER_FLEET_STATE_HH
