/**
 * @file
 * Struct-of-arrays replay state for one rack of the trace simulator.
 *
 * The per-object hot loop walked every VM of every server on every
 * control step: a TimeSeries::atTime division, a linear group lookup
 * and a full power-model evaluation per VM, with the per-server
 * state scattered across Server/CoreGroup objects.  FleetState
 * flattens the replay inputs into parallel arrays indexed by a
 * per-server [offset, offset+count) range:
 *
 *  - raw pointers to each VM's utilization and turbo-power sample
 *    arrays (the TimeSeries storage, stable for the rack lifetime);
 *  - per-server candidate bitmasks (VMs that ever request
 *    overclocking);
 *  - contiguous scratch rows handed to
 *    Server::setUtilsAndTurboWatts, the batch update that reuses
 *    the generator's precomputed turbo watts instead of
 *    re-evaluating the power model.
 *
 * Utilization is slot-constant (5-minute telemetry), so applySlot()
 * runs once per closed slot, not once per control step, and also
 * publishes each server's *want* bitmask (candidate VMs whose
 * utilization crosses the overclock threshold).  The step loop then
 * touches only the set bits of want|active instead of every VM.
 *
 * On first use the per-VM series are additionally transposed into
 * slot-major rows (all VMs' samples for one slot contiguous) and the
 * want masks precomputed per slot — both are pure functions of the
 * immutable trace, so applySlot degenerates to handing each server a
 * pointer into the transposed row plus a mask load, instead of
 * striding across one heap-allocated series per VM every slot.
 */

#ifndef SOC_CLUSTER_FLEET_STATE_HH
#define SOC_CLUSTER_FLEET_STATE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "power/rack.hh"
#include "workload/trace_generator.hh"

namespace soc
{
namespace cluster
{

/** SoA replay state for one rack; see the file comment. */
class FleetState
{
  public:
    /** VM bitmasks are 64-bit; servers host far fewer VMs. */
    static constexpr std::size_t kMaxVmsPerServer = 64;

    /**
     * @param ocUtilThreshold Utilization at/above which a candidate
     *        VM wants to overclock (TraceSimConfig::ocUtilThreshold).
     */
    explicit FleetState(double ocUtilThreshold)
        : threshold_(ocUtilThreshold)
    {
    }

    /**
     * Register one server's replay inputs.  @p trace must outlive
     * this object (its sample vectors are captured by pointer);
     * @p candidate flags which VMs ever request overclocking.
     * Servers must be added in rack order.
     */
    void addServer(const workload::ServerTrace &trace,
                   const std::vector<bool> &candidate);

    std::size_t servers() const { return counts_.size(); }

    /** Number of telemetry slots every registered series covers. */
    std::size_t slots() const { return slots_; }

    /**
     * Push slot @p slot's utilizations (with turbo-power hints) into
     * every server of @p rack and rebuild the want masks.  Servers
     * are updated in rack order.  @p slot must be < slots(): the
     * traces are generated to cover the full sim horizon, so an
     * out-of-range slot is a caller bug (asserted), mirroring the
     * TimeSeries out-of-range policy.
     */
    void applySlot(power::Rack &rack, std::size_t slot);

    /** Candidate VMs of @p server above threshold at the last
     *  applied slot (bit v == VM v == core-group id v). */
    std::uint64_t wantMask(std::size_t server) const
    {
        return want_[server];
    }

    /** Utilization of VM @p v on @p server at the last applied
     *  slot (valid after the first applySlot). */
    double util(std::size_t server, std::size_t v) const
    {
        return utilBySlot_[lastSlot_ * utilSamples_.size() +
                           offsets_[server] + v];
    }

  private:
    /** Build the slot-major transpose and per-slot want masks. */
    void finalize();

    double threshold_;
    std::size_t slots_ = 0;
    std::size_t lastSlot_ = 0;

    /** Per-server [offset, offset+count) range into the VM arrays. */
    std::vector<std::size_t> offsets_;
    std::vector<std::size_t> counts_;
    /** Per-VM sample arrays (TimeSeries storage), by flat VM index. */
    std::vector<const double *> utilSamples_;
    std::vector<const double *> wattsSamples_;
    /** Candidate VMs per server, as a bitmask. */
    std::vector<std::uint64_t> candidate_;
    /** Want mask per server at the last applied slot. */
    std::vector<std::uint64_t> want_;
    /** Slot-major transposes: row `slot` holds every VM's sample
     *  for that slot, in flat VM-index order (finalize()). */
    std::vector<double> utilBySlot_;
    std::vector<double> wattsBySlot_;
    /** Per-slot want masks, servers-major per row (finalize()). */
    std::vector<std::uint64_t> wantBySlot_;
};

} // namespace cluster
} // namespace soc

#endif // SOC_CLUSTER_FLEET_STATE_HH
