#!/bin/sh
# Full CI gate: tier-1 build + tests, the bench regression gates,
# the static-analysis chain, ThreadSanitizer, and the suite under
# UndefinedBehaviorSanitizer.
# Each stage uses its own build directory so sanitizer flags never
# leak between configurations.  Usage: scripts/ci_check.sh
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "==== ci_check: tier-1 build + ctest ===="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$(nproc)"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$(nproc)"

echo "==== ci_check: bench gates ===="
"$ROOT/scripts/bench_check.sh" "$ROOT/build"

echo "==== ci_check: paper-scale smoke (512 racks) ===="
# CI-sized slice of the 7,104-rack streaming replay: exercises the
# HierarchyZone lockstep orchestrator end to end without the full
# fleet's minutes of wall time.  Success = the run completes and
# emits its gated fields (values are gated at full scale by
# bench_check.sh).
"$ROOT/build/bench/bench_trace_sim" \
    "$ROOT/build/BENCH_paper_smoke.json" --paper-scale --racks 512
for field in paper_racks_per_s paper_peak_rss_mb; do
    grep -q "\"$field\"" "$ROOT/build/BENCH_paper_smoke.json" || {
        echo "FAIL: $field missing from paper-scale smoke output" >&2
        exit 1
    }
done

echo "==== ci_check: six-week horizon smoke (16 racks) ===="
# Tiny fleet on the paper's full 1w + 5w horizon: crosses weekly
# recomputes, weekend amplitude shifts and many stream-window
# refills — the long-horizon paths the 6h + 6h smoke never reaches.
"$ROOT/build/bench/bench_trace_sim" \
    "$ROOT/build/BENCH_sixweek_smoke.json" --paper-scale \
    --racks 16 --six-weeks
for field in paper_racks_per_s paper_peak_rss_mb; do
    grep -q "\"$field\"" "$ROOT/build/BENCH_sixweek_smoke.json" || {
        echo "FAIL: $field missing from six-week smoke output" >&2
        exit 1
    }
done

echo "==== ci_check: static analysis ===="
STATIC_LOG="$(mktemp)"
if ! "$ROOT/scripts/static_check.sh" "$ROOT/build-static" \
    >"$STATIC_LOG" 2>&1; then
    cat "$STATIC_LOG"
    rm -f "$STATIC_LOG"
    exit 1
fi
cat "$STATIC_LOG"
# One-line findings delta for the CI log scanner: new findings vs
# the checked-in baseline, straight from the soclint summary.
grep '^soclint summary:' "$STATIC_LOG" |
    sed 's/^soclint summary:/soclint findings delta vs baseline:/'
rm -f "$STATIC_LOG"

echo "==== ci_check: ThreadSanitizer ===="
"$ROOT/scripts/tsan_check.sh" "$ROOT/build-tsan"

echo "==== ci_check: UndefinedBehaviorSanitizer ===="
cmake -B "$ROOT/build-ubsan" -S "$ROOT" -DSOC_SANITIZE=undefined
cmake --build "$ROOT/build-ubsan" -j "$(nproc)"
ctest --test-dir "$ROOT/build-ubsan" --output-on-failure -j "$(nproc)"

echo "==== ci_check: all stages passed ===="
