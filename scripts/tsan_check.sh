#!/bin/sh
# ThreadSanitizer ctest job: rebuild the whole tree under TSan and
# run the test suite (the determinism + pool tests exercise the
# parallel trace simulator).  Usage: scripts/tsan_check.sh [builddir]
set -e
BUILD="${1:-build-tsan}"
cmake -B "$BUILD" -S "$(dirname "$0")/.." -DSOC_SANITIZE=thread
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
