#!/bin/sh
# Static-analysis gate (DESIGN.md §10, §15): chains, in order,
#
#   1. soclint        - token-aware determinism / fail-closed / unit
#                       rules over src/, bench/, tools/, examples/
#                       against the checked-in baseline, emitting a
#                       SARIF artifact that is then re-validated by
#                       soclint's own fail-closed SARIF checker;
#   2. clang-format   - check-only style pass (skipped when absent);
#   3. clang-tidy     - .clang-tidy checks over the compilation
#                       database (skipped when absent);
#   4. -Werror build  - the whole tree with SOC_WERROR=ON.
#
# The clang tools are optional because the reference container ships
# only gcc; each skip is reported loudly so CI logs show what ran.
#
# Usage: scripts/static_check.sh [builddir]
#        scripts/static_check.sh --baseline-update [builddir]
#
# --baseline-update regenerates tools/soclint/baseline.txt from the
# current findings.  It refuses to run on a dirty work tree: the
# baseline must be the only change in its commit so review can see
# exactly which findings were accepted.
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

UPDATE=0
if [ "$1" = "--baseline-update" ]; then
    UPDATE=1
    shift
fi
BUILD="${1:-$ROOT/build-static}"
BASELINE="$ROOT/tools/soclint/baseline.txt"
SARIF="$BUILD/soclint.sarif"

echo "== static_check: 1/4 soclint =="
cmake -B "$BUILD" -S "$ROOT" -DSOC_WERROR=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target soclint >/dev/null
SOCLINT="$BUILD/tools/soclint/soclint"

if [ "$UPDATE" = 1 ]; then
    if [ -n "$(git -C "$ROOT" status --porcelain)" ]; then
        echo "static_check: refusing --baseline-update on a dirty" \
            "work tree; commit or stash first" >&2
        exit 1
    fi
    "$SOCLINT" --root "$ROOT" --baseline-update "$BASELINE"
    echo "static_check: baseline rewritten at $BASELINE"
    exit 0
fi

"$SOCLINT" --root "$ROOT" --baseline "$BASELINE" --sarif "$SARIF"
# Fail closed on our own artifact: a malformed report must never
# reach the CI uploader looking like a clean run.
"$SOCLINT" --check-sarif "$SARIF"
echo "soclint: clean (SARIF artifact: $SARIF)"

echo "== static_check: 2/4 clang-format (check only) =="
if command -v clang-format >/dev/null 2>&1; then
    find "$ROOT/src" "$ROOT/tools" \
        -name '*.cc' -o -name '*.hh' -o -name '*.hpp' |
        xargs clang-format --dry-run -Werror
    echo "clang-format: clean"
else
    echo "clang-format: not installed, SKIPPED"
fi

echo "== static_check: 3/4 clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    ln -sf "$BUILD/compile_commands.json" \
        "$ROOT/compile_commands.json"
    find "$ROOT/src" -name '*.cc' |
        xargs clang-tidy -p "$ROOT" --quiet
    echo "clang-tidy: clean"
else
    echo "clang-tidy: not installed, SKIPPED"
fi

echo "== static_check: 4/4 warnings-as-errors build =="
cmake --build "$BUILD" -j "$(nproc)"
echo "static_check: all gates passed"
