#!/bin/sh
# Static-analysis gate (DESIGN.md §10): chains, in order,
#
#   1. soclint        - determinism + unit rules (always available:
#                       built from tools/soclint in this tree);
#   2. clang-format   - check-only style pass (skipped when absent);
#   3. clang-tidy     - .clang-tidy checks over the compilation
#                       database (skipped when absent);
#   4. -Werror build  - the whole tree with SOC_WERROR=ON.
#
# The clang tools are optional because the reference container ships
# only gcc; each skip is reported loudly so CI logs show what ran.
# Usage: scripts/static_check.sh [builddir]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-static}"

echo "== static_check: 1/4 soclint =="
cmake -B "$BUILD" -S "$ROOT" -DSOC_WERROR=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target soclint >/dev/null
"$BUILD/tools/soclint/soclint" "$ROOT/src"
echo "soclint: clean"

echo "== static_check: 2/4 clang-format (check only) =="
if command -v clang-format >/dev/null 2>&1; then
    find "$ROOT/src" "$ROOT/tools" \
        -name '*.cc' -o -name '*.hh' -o -name '*.hpp' |
        xargs clang-format --dry-run -Werror
    echo "clang-format: clean"
else
    echo "clang-format: not installed, SKIPPED"
fi

echo "== static_check: 3/4 clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    ln -sf "$BUILD/compile_commands.json" \
        "$ROOT/compile_commands.json"
    find "$ROOT/src" -name '*.cc' |
        xargs clang-tidy -p "$ROOT" --quiet
    echo "clang-tidy: clean"
else
    echo "clang-tidy: not installed, SKIPPED"
fi

echo "== static_check: 4/4 warnings-as-errors build =="
cmake --build "$BUILD" -j "$(nproc)"
echo "static_check: all gates passed"
