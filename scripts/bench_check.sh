#!/bin/sh
# Performance check: build the bench targets and refresh
# BENCH_trace_sim.json at the repo root (simulator replay throughput,
# gOA recompute latency at 1-day vs 6-week telemetry horizons, the
# hierarchical budget tier, hint-ingestion throughput under the
# standard adversarial storm, and the 7,104-rack paper-scale
# streaming replay).  Gates:
#  - replay throughput must stay at or above RACKS_PER_S_MIN
#    (struct-of-arrays replay baseline, with margin for CI noise);
#  - the 6-week recompute must stay within 2x of the 1-day one —
#    the incremental-aggregation guarantee this repo relies on
#    (min-of-N figures: the mean mixes in scheduler noise);
#  - the incremental hierarchy recompute must undercut the flat
#    zone split by at least 2x — the reason the tier exists;
#  - storm ingestion must sustain HINTS_PER_S_MIN through the
#    offer/parse/dedup/drop/drain path (~1/4 of the throughput
#    measured when the HintIngress boundary landed);
#  - batch normal generation (Rng::normalFill, the window-refill
#    primitive) must stay faster than the scalar loop it replaced
#    (GEN_BATCH_SPEEDUP_MIN, ~1.09x measured; the polar-method math
#    dominates both sides, so the margin is thin — the end-to-end
#    generation win is gated via paper_gen_s below);
#  - the paper-scale run (7,104 racks x 8 servers, 6h + 6h,
#    HierarchyZone) must sustain PAPER_RACKS_PER_S_MIN and stay
#    under PAPER_PEAK_RSS_MB_MAX — the streaming-window + resident-
#    fleet footprint (~178 racks/s, ~14 GB with the compact
#    quantized columns; the gate landed at ~55 racks/s, ~29 GB);
#  - paper-scale trace generation must stay cheaper than the replay
#    itself (gen_s < sim_s): the batch generator must never become
#    the bottleneck of a policy study.
# Usage: scripts/bench_check.sh [builddir]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
RACKS_PER_S_MIN=500
HINTS_PER_S_MIN=1000000
GEN_BATCH_SPEEDUP_MIN=1.02
PAPER_RACKS_PER_S_MIN=100
PAPER_PEAK_RSS_MB_MAX=16000
cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)" \
    --target bench_trace_sim bench_micro_primitives
"$BUILD/bench/bench_trace_sim" "$ROOT/BENCH_trace_sim.json"

# Parse fail-closed: an empty extraction (field renamed, malformed
# JSON) must fail the gate rather than vacuously pass it.
extract() {
    VALUE=$(sed -n "s/.*\"$1\": \([0-9.]*\).*/\1/p" \
        "$ROOT/BENCH_trace_sim.json")
    if [ -z "$VALUE" ]; then
        echo "FAIL: field '$1' missing from BENCH_trace_sim.json" >&2
        exit 1
    fi
    echo "$VALUE"
}

RACKS_PER_S=$(extract racks_per_s)
echo "replay throughput: $RACKS_PER_S racks/s" \
     "(floor: $RACKS_PER_S_MIN)"
awk "BEGIN { exit !($RACKS_PER_S >= $RACKS_PER_S_MIN) }" || {
    echo "FAIL: replay throughput regressed below" \
         "$RACKS_PER_S_MIN racks/s" >&2
    exit 1
}

RATIO=$(extract ratio_6w_over_1d)
echo "recompute 6w/1d ratio: $RATIO (bound: 2.0)"
awk "BEGIN { exit !($RATIO <= 2.0) }" || {
    echo "FAIL: recompute cost grows with telemetry horizon" >&2
    exit 1
}

FLAT_SPLIT_US=$(extract flat_zone_split_us)
INCR_RECOMPUTE_US=$(extract incremental_recompute_us)
echo "hierarchy recompute: ${INCR_RECOMPUTE_US}us incremental" \
     "vs ${FLAT_SPLIT_US}us flat (required: >= 2x faster)"
awk "BEGIN { exit !($FLAT_SPLIT_US >= 2 * $INCR_RECOMPUTE_US) }" || {
    echo "FAIL: incremental hierarchy recompute no longer beats" \
         "the flat zone split by 2x" >&2
    exit 1
}

HINTS_PER_S=$(extract hints_per_s)
echo "storm ingestion: $HINTS_PER_S hints/s" \
     "(floor: $HINTS_PER_S_MIN)"
awk "BEGIN { exit !($HINTS_PER_S >= $HINTS_PER_S_MIN) }" || {
    echo "FAIL: hint ingestion regressed below" \
         "$HINTS_PER_S_MIN hints/s" >&2
    exit 1
}

GEN_SCALAR=$(extract gen_scalar_normals_per_s)
GEN_BATCH=$(extract gen_batch_normals_per_s)
GEN_SPEEDUP=$(extract gen_batch_speedup)
echo "batch normal generation: $GEN_BATCH normals/s batch" \
     "vs $GEN_SCALAR scalar, speedup $GEN_SPEEDUP" \
     "(floor: $GEN_BATCH_SPEEDUP_MIN)"
awk "BEGIN { exit !($GEN_SPEEDUP >= $GEN_BATCH_SPEEDUP_MIN) }" || {
    echo "FAIL: batch normalFill no longer beats the scalar loop" \
         "by ${GEN_BATCH_SPEEDUP_MIN}x" >&2
    exit 1
}

PAPER_RACKS_PER_S=$(extract paper_racks_per_s)
echo "paper-scale replay: $PAPER_RACKS_PER_S racks/s" \
     "(floor: $PAPER_RACKS_PER_S_MIN)"
awk "BEGIN { exit !($PAPER_RACKS_PER_S >= $PAPER_RACKS_PER_S_MIN) }" || {
    echo "FAIL: paper-scale replay regressed below" \
         "$PAPER_RACKS_PER_S_MIN racks/s" >&2
    exit 1
}

PAPER_PEAK_RSS_MB=$(extract paper_peak_rss_mb)
echo "paper-scale peak RSS: $PAPER_PEAK_RSS_MB MB" \
     "(ceiling: $PAPER_PEAK_RSS_MB_MAX)"
awk "BEGIN { exit !($PAPER_PEAK_RSS_MB <= $PAPER_PEAK_RSS_MB_MAX) }" || {
    echo "FAIL: paper-scale peak RSS above" \
         "$PAPER_PEAK_RSS_MB_MAX MB — streaming replay leak?" >&2
    exit 1
}

PAPER_GEN_S=$(extract paper_gen_s)
PAPER_SIM_S=$(extract paper_sim_s)
echo "paper-scale generation: ${PAPER_GEN_S}s gen" \
     "vs ${PAPER_SIM_S}s sim (required: gen < sim)"
awk "BEGIN { exit !($PAPER_GEN_S < $PAPER_SIM_S) }" || {
    echo "FAIL: trace generation now dominates the paper-scale" \
         "replay (gen_s >= sim_s)" >&2
    exit 1
}
# Microbenchmarks of the underlying primitives (informational).
"$BUILD/bench/bench_micro_primitives" \
    --benchmark_filter='BM_Template|BM_Budget' \
    --benchmark_min_time=0.05
