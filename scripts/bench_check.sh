#!/bin/sh
# Performance check: build the bench targets and refresh
# BENCH_trace_sim.json at the repo root (simulator wall time plus
# gOA recompute latency at 1-day vs 6-week telemetry horizons).
# Fails when the 6-week recompute is more than 2x the 1-day one —
# the incremental-aggregation guarantee this repo relies on.
# Usage: scripts/bench_check.sh [builddir]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)" \
    --target bench_trace_sim bench_micro_primitives
"$BUILD/bench/bench_trace_sim" "$ROOT/BENCH_trace_sim.json"
RATIO=$(sed -n 's/.*"ratio_6w_over_1d": \([0-9.]*\).*/\1/p' \
    "$ROOT/BENCH_trace_sim.json")
echo "recompute 6w/1d ratio: $RATIO (bound: 2.0)"
awk "BEGIN { exit !($RATIO <= 2.0) }" || {
    echo "FAIL: recompute cost grows with telemetry horizon" >&2
    exit 1
}
# Microbenchmarks of the underlying primitives (informational).
"$BUILD/bench/bench_micro_primitives" \
    --benchmark_filter='BM_Template|BM_Budget' \
    --benchmark_min_time=0.05
