#!/bin/sh
# Performance check: build the bench targets and refresh
# BENCH_trace_sim.json at the repo root (simulator replay throughput,
# gOA recompute latency at 1-day vs 6-week telemetry horizons, the
# hierarchical budget tier, and hint-ingestion throughput under the
# standard adversarial storm).  Three gates:
#  - replay throughput must stay at or above RACKS_PER_S_MIN
#    (struct-of-arrays replay baseline, with margin for CI noise);
#  - the 6-week recompute must stay within 2x of the 1-day one —
#    the incremental-aggregation guarantee this repo relies on;
#  - storm ingestion must sustain HINTS_PER_S_MIN through the
#    offer/parse/dedup/drop/drain path (~1/4 of the throughput
#    measured when the HintIngress boundary landed).
# Usage: scripts/bench_check.sh [builddir]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
RACKS_PER_S_MIN=500
HINTS_PER_S_MIN=1000000
cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)" \
    --target bench_trace_sim bench_micro_primitives
"$BUILD/bench/bench_trace_sim" "$ROOT/BENCH_trace_sim.json"

# Parse fail-closed: an empty extraction (field renamed, malformed
# JSON) must fail the gate rather than vacuously pass it.
extract() {
    VALUE=$(sed -n "s/.*\"$1\": \([0-9.]*\).*/\1/p" \
        "$ROOT/BENCH_trace_sim.json")
    if [ -z "$VALUE" ]; then
        echo "FAIL: field '$1' missing from BENCH_trace_sim.json" >&2
        exit 1
    fi
    echo "$VALUE"
}

RACKS_PER_S=$(extract racks_per_s)
echo "replay throughput: $RACKS_PER_S racks/s" \
     "(floor: $RACKS_PER_S_MIN)"
awk "BEGIN { exit !($RACKS_PER_S >= $RACKS_PER_S_MIN) }" || {
    echo "FAIL: replay throughput regressed below" \
         "$RACKS_PER_S_MIN racks/s" >&2
    exit 1
}

RATIO=$(extract ratio_6w_over_1d)
echo "recompute 6w/1d ratio: $RATIO (bound: 2.0)"
awk "BEGIN { exit !($RATIO <= 2.0) }" || {
    echo "FAIL: recompute cost grows with telemetry horizon" >&2
    exit 1
}

HINTS_PER_S=$(extract hints_per_s)
echo "storm ingestion: $HINTS_PER_S hints/s" \
     "(floor: $HINTS_PER_S_MIN)"
awk "BEGIN { exit !($HINTS_PER_S >= $HINTS_PER_S_MIN) }" || {
    echo "FAIL: hint ingestion regressed below" \
         "$HINTS_PER_S_MIN hints/s" >&2
    exit 1
}
# Microbenchmarks of the underlying primitives (informational).
"$BUILD/bench/bench_micro_primitives" \
    --benchmark_filter='BM_Template|BM_Budget' \
    --benchmark_min_time=0.05
