#!/bin/sh
# Chaos job: build the tree under ThreadSanitizer and then
# AddressSanitizer, and run the fault-injection suite (ctest label
# `chaos`) under each.  The suite drives the simulators through gOA
# outages, sOA crash-restarts, message faults, and the adversarial
# hint-storm catalog against the bounded HintIngress (flood, dedup,
# flapping, lying/stale telemetry, malformed-frame fuzz), so a data
# race or heap error on the degraded and ingestion paths surfaces
# here rather than in a long bench run.
# Usage: scripts/chaos_check.sh [builddir-prefix]
set -e
ROOT="$(dirname "$0")/.."
PREFIX="${1:-build-chaos}"

for SAN in thread address; do
    BUILD="$PREFIX-$SAN"
    echo "== chaos suite under ${SAN} sanitizer (${BUILD}) =="
    cmake -B "$BUILD" -S "$ROOT" -DSOC_SANITIZE="$SAN"
    cmake --build "$BUILD" -j "$(nproc)" --target test_chaos
    ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        -L chaos
done
echo "chaos suite clean under thread + address sanitizers"
