/**
 * @file
 * Quickstart: the smallest end-to-end SmartOClock setup.
 *
 * One rack with two servers, one latency-critical VM per server,
 * the full agent stack (rack manager, sOAs, gOA, WI agents), and a
 * simulated latency spike that triggers overclocking through the
 * workload-intelligence path — then subsides and releases it.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>
#include <memory>

#include "core/goa.hh"
#include "core/wi.hh"
#include "power/rack_manager.hh"
#include "telemetry/table.hh"

using namespace soc;

int
main()
{
    // --- Hardware: one rack, two 64-core servers ---------------------
    const power::PowerModel model; // default 64-core, 420 W TDP SKU
    power::Rack rack(/*id=*/0, power::Watts{1100.0});
    power::RackManager manager(rack);

    power::Server &server_a = rack.addServer(&model);
    power::Server &server_b = rack.addServer(&model);

    // One 8-core latency-critical VM per server at 60% utilization.
    const power::GroupId vm_a = server_a.addGroup(8, 0.6);
    const power::GroupId vm_b = server_b.addGroup(8, 0.6);

    // --- SmartOClock agents -------------------------------------------
    core::SoaConfig soa_cfg =
        core::SoaConfig::forPolicy(core::PolicyKind::SmartOClock);
    core::ServerOverclockingAgent soa_a(server_a, soa_cfg, &rack);
    core::ServerOverclockingAgent soa_b(server_b, soa_cfg, &rack);
    manager.addListener(&soa_a);
    manager.addListener(&soa_b);

    core::GlobalOverclockingAgent goa(rack, model);
    goa.addAgent(&soa_a);
    goa.addAgent(&soa_b);
    goa.assignEvenSplit(); // bootstrap budgets

    // Workload Intelligence for the "frontend" service: overclock
    // when P99 nears the 100 ms SLO, scale out as the fallback.
    core::WiPolicyConfig wi_cfg;
    wi_cfg.sloMs = 100.0;
    wi_cfg.baselineP99Ms = 25.0;
    core::GlobalWiAgent wi("frontend", wi_cfg);
    wi.addVm(std::make_unique<core::LocalWiAgent>(0, &soa_a, vm_a,
                                                  8));
    wi.addVm(std::make_unique<core::LocalWiAgent>(1, &soa_b, vm_b,
                                                  8));
    wi.setScaleOutHandler([](int n) {
        std::cout << "  [WI] corrective action: scale out +" << n
                  << " VM(s)\n";
    });

    // --- Drive a latency spike through the stack ---------------------
    telemetry::Table timeline(
        "quickstart: latency spike -> overclock -> recovery",
        {"t", "P99 (ms)", "overclocked?", "VM-A MHz", "rack W",
         "budget-A W"});

    auto step = [&](sim::Tick t, double p99) {
        core::VmMetrics metrics;
        metrics.p99LatencyMs = p99;
        metrics.utilization = 0.6;
        wi.onMetrics(t, metrics);
        // Control plane: sOA feedback loops + rack safety.
        for (sim::Tick c = t; c < t + 15 * sim::kSecond;
             c += 5 * sim::kSecond) {
            soa_a.tick(c);
            soa_b.tick(c);
            manager.tick(c);
        }
        timeline.addRow(
            {sim::formatTick(t).substr(3),
             telemetry::fmt(p99, 0),
             wi.overclocking() ? "yes" : "no",
             std::to_string(
                 server_a.group(vm_a)->effectiveMHz().count()),
             telemetry::fmt(rack.powerWatts().count(), 0),
             telemetry::fmt(soa_a.budgetWatts(t).count(), 0)});
    };

    sim::Tick t = 0;
    for (double p99 : {30.0, 45.0, 85.0, 92.0, 90.0, 70.0, 40.0,
                       20.0}) {
        step(t, p99);
        t += 15 * sim::kSecond;
    }
    timeline.print(std::cout);

    std::cout << "sOA-A stats: " << soa_a.stats().requests
              << " request(s), " << soa_a.stats().grants
              << " grant(s), lifetime budget consumed "
              << soa_a.stats().overclockedCoreTime / sim::kSecond
              << " core-seconds\n";
    return 0;
}
