/**
 * @file
 * Example: a latency-critical microservice under a load spike in
 * the four §V-A environments (Baseline, ScaleOut, ScaleUp,
 * SmartOClock), using the full cluster harness.
 *
 * Prints the trade-off the paper's evaluation is about: tails,
 * missed SLOs, instances (cost) and energy.
 *
 * Build & run:  ./build/examples/microservice_autoscale
 */

#include <iostream>

#include "cluster/service_sim.hh"
#include "telemetry/table.hh"

using namespace soc;
using namespace soc::cluster;
using telemetry::fmt;

int
main()
{
    telemetry::Table table(
        "one latency-critical deployment mix, four environments "
        "(8-minute run)",
        {"environment", "P99 ms (high)", "missed SLOs",
         "mean instances", "overclocks", "scale-outs"});

    for (auto env : {Environment::Baseline, Environment::ScaleOut,
                     Environment::ScaleUp,
                     Environment::SmartOClock}) {
        ServiceSimConfig cfg;
        cfg.environment = env;
        cfg.socialNetServers = 8;
        cfg.mlServers = 4;
        cfg.spareServers = 4;
        cfg.duration = 8 * sim::kMinute;
        cfg.warmup = sim::kMinute;
        cfg.seed = 3;
        const auto result = runServiceSim(cfg);
        table.addRow(
            {environmentName(env),
             fmt(result.byClass[2].p99Ms, 1),
             std::to_string(result.byClass[2].violations),
             fmt(result.byClass[2].meanInstances),
             std::to_string(result.overclockStarts),
             std::to_string(result.scaleOuts)});
    }
    table.print(std::cout);

    std::cout <<
        "SmartOClock overclocks first and falls back to scale-out, "
        "so it holds the tail with\nfewer instances than pure "
        "horizontal autoscaling.\n";
    return 0;
}
