/**
 * @file
 * Example: trace-driven datacenter study — run the five management
 * policies over the same synthetic production traces and compare
 * capping events, overclocking success and performance, as a
 * downstream user would when evaluating a policy change.
 *
 * Build & run:  ./build/examples/datacenter_sim [limit_factor]
 *   limit_factor: rack limit relative to baseline P99 power
 *                 (default 1.08; smaller = more constrained).
 */

#include <cstdlib>
#include <iostream>

#include "cluster/trace_sim.hh"
#include "telemetry/table.hh"

using namespace soc;
using namespace soc::cluster;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main(int argc, char **argv)
{
    const double limit_factor =
        argc > 1 ? std::atof(argv[1]) : 1.08;

    telemetry::Table table(
        "policy comparison at limit factor " + fmt(limit_factor),
        {"policy", "cap events", "success", "norm. perf",
         "mean rack util", "energy (MJ)"});

    const core::PolicyKind policies[] = {
        core::PolicyKind::Central, core::PolicyKind::NaiveOClock,
        core::PolicyKind::NoFeedback, core::PolicyKind::NoWarning,
        core::PolicyKind::SmartOClock};

    // The five policy runs are independent; run them on one worker
    // pool sized to the hardware.
    std::vector<TraceSimConfig> configs;
    for (auto policy : policies) {
        TraceSimConfig cfg;
        cfg.policy = policy;
        cfg.racks = 2;
        cfg.serversPerRack = 12;
        cfg.warmup = sim::kWeek;
        cfg.duration = 3 * sim::kDay;
        cfg.limitFactor = limit_factor;
        cfg.seed = 5;
        configs.push_back(cfg);
    }
    const auto results = runTraceSimBatch(configs);

    for (std::size_t p = 0; p < configs.size(); ++p) {
        const auto &result = results[p];
        table.addRow({core::policyName(policies[p]),
                      std::to_string(result.capEvents),
                      fmtPercent(result.successRate, 1),
                      fmt(result.normPerformance, 3),
                      fmtPercent(result.meanRackUtil, 1),
                      fmt(result.energyJoules.count() / 1e6, 1)});
    }
    table.print(std::cout);

    std::cout <<
        "Try a tighter limit (e.g. `datacenter_sim 1.04`) to watch "
        "NaiveOClock thrash the\ncapping mechanism while SmartOClock "
        "keeps nearly the oracle's success rate.\n";
    return 0;
}
