/**
 * @file
 * Example: capacity / headroom planning with power templates.
 *
 * A what-if tool an operator would run before enabling overclocking
 * on a rack: build DailyMed templates from history, ask how many
 * cores can be overclocked at each hour without crossing the rack
 * limit, and how long the lifetime budget sustains the plan.
 *
 * Build & run:  ./build/examples/capacity_planner
 */

#include <algorithm>
#include <iostream>

#include "core/budget_allocator.hh"
#include "core/lifetime.hh"
#include "core/profile_template.hh"
#include "telemetry/table.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main()
{
    constexpr int kServers = 10;
    const power::PowerModel model;
    const core::LifetimeModel lifetime(model);

    // Two weeks of history for a 10-server rack.
    workload::TraceConfig cfg;
    cfg.end = 2 * sim::kWeek;
    workload::TraceGenerator gen(12, cfg);
    std::vector<workload::ServerTrace> traces;
    for (int s = 0; s < kServers; ++s) {
        traces.push_back(gen.serverTrace(
            gen.randomVmMix(model.params().cores), model));
    }
    const auto rack_power =
        workload::TraceGenerator::rackPower(traces);
    const auto rack_template = core::ProfileTemplate::build(
        core::TemplateStrategy::DailyMed, rack_power);
    const double limit = rack_power.quantile(0.99) * 1.12;

    // Per-core overclock surcharge at worst-case utilization.
    const power::Watts per_core = model.overclockExtraPower(
        0.9, power::kOverclockMHz, 1);

    telemetry::Table plan(
        "overclocking capacity plan (rack limit " + fmt(limit, 0) +
            " W)",
        {"hour", "predicted W", "headroom W", "OC cores that fit"});
    int min_cores = 1 << 30;
    int max_cores = 0;
    for (int hour = 0; hour < 24; hour += 2) {
        // Plan for a weekday (Wednesday).
        const sim::Tick t = 2 * sim::kDay +
            static_cast<sim::Tick>(hour) * sim::kHour;
        const double predicted = rack_template.predict(t);
        const double headroom = std::max(0.0, limit - predicted);
        const int cores =
            static_cast<int>(headroom / per_core.count());
        min_cores = std::min(min_cores, cores);
        max_cores = std::max(max_cores, cores);
        plan.addRow({std::to_string(hour) + ":00",
                     fmt(predicted, 0), fmt(headroom, 0),
                     std::to_string(cores)});
    }
    plan.print(std::cout);

    // Lifetime view: what duty cycle keeps the parts on their rated
    // aging curve at the fleet's typical utilization?
    const double duty = lifetime.maxOverclockDuty(
        0.45, power::kOverclockMHz, 1.0);
    std::cout << "Power headroom supports " << min_cores << "-"
              << max_cores
              << " overclocked cores depending on hour.\n";
    std::cout << "Lifetime budget: overclocking up to "
              << fmtPercent(duty)
              << " of the time keeps aging within the rated "
                 "curve at 45% utilization.\n";

    // Heterogeneous split preview for the three hungriest servers.
    core::BudgetAllocator allocator(model);
    std::vector<core::ServerProfile> profiles;
    for (const auto &trace : traces) {
        core::ServerProfile profile;
        profile.power = core::ProfileTemplate::build(
            core::TemplateStrategy::DailyMed, trace.powerWatts);
        profile.utilization = core::ProfileTemplate::build(
            core::TemplateStrategy::DailyMed, trace.serverUtil);
        profile.overclockedCores = core::ProfileTemplate::flat(0.0);
        // Assume each server wants its hottest VM overclocked.
        double hottest = 0.0;
        for (std::size_t v = 0; v < trace.mix.size(); ++v)
            hottest = std::max(
                hottest,
                static_cast<double>(trace.mix[v].cores));
        profile.requestedCores =
            core::ProfileTemplate::flat(hottest);
        profiles.push_back(std::move(profile));
    }
    const auto budgets =
        allocator.split(power::Watts{limit}, profiles);
    telemetry::Table split("heterogeneous budget preview (noon)",
                           {"server", "predicted W", "budget W"});
    const sim::Tick noon = 2 * sim::kDay + 12 * sim::kHour;
    for (int s = 0; s < kServers; ++s) {
        split.addRow({std::to_string(s),
                      fmt(profiles[s].power.predict(noon), 0),
                      fmt(budgets[s].predict(noon), 0)});
    }
    split.print(std::cout);
    return 0;
}
